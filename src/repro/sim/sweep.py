"""Crash-tolerant parameter sweeps over system configurations.

A thin declarative layer used by the design-space and resilience
examples: name a few axes (each a list of values), take their cross
product, run each point over a benchmark list with shared traces, and
collect a tidy result grid.

Fault campaigns make individual points genuinely fallible — an
uncorrectable dirty-line upset surfaces as a typed
:class:`~repro.common.errors.UncorrectableDataError` — so the runner
hardens the grid instead of letting one point abort it:

* **isolation** — any :class:`~repro.common.errors.ReproError` from a
  point is caught and recorded as a failed :class:`RunOutcome`; other
  exception types indicate simulator bugs and still propagate.
* **retry with reseed** — a failed cell is retried up to
  ``max_retries`` times, each attempt bumping the trace seed and the
  fault-plan seed by ``reseed_step`` so the retry explores a different
  deterministic universe rather than replaying the same crash.
* **budget** — an optional wall-clock allowance per point.  On the
  in-process paths (serial, and ``execute_cell`` inside plain workers)
  the budget is *advisory*: Python code cannot preempt a running
  attempt, so it is only checked **between** attempts and benchmarks —
  one slow attempt can blow far past its allowance before the check
  fires.  Under a :class:`~repro.resilience.SupervisorConfig` the
  budget becomes a true wall-clock deadline: the supervisor SIGKILLs a
  worker whose attempt exceeds it.
* **checkpointing** — with ``checkpoint_path`` set, completed cells
  are persisted to an atomic, checksummed JSON checkpoint (format v2;
  v1 files from older runs are still read, and rewritten as v2 on the
  next flush — see :mod:`repro.resilience.checkpoint`, which also
  salvages partially corrupted files instead of refusing to resume).
  Re-invoking ``run()`` after a crash (or kill) replays completed
  cells from the file and re-runs only the incomplete ones, with seeds
  untouched, so the resumed grid is identical to an uninterrupted run.
  Flushes are batched (default: once per point) to avoid O(cells²)
  rewrite I/O on big grids, serialized against concurrent sweeps with
  a cross-process file lock, and ``finally``-guarded in :meth:`Sweep.run`
  itself: any Python-level exception — including Ctrl-C — still
  flushes every completed cell on the way out, so only a hard
  ``kill -9`` can lose up to one flush interval of finished work.
* **parallelism** — ``jobs=N`` runs cells on N worker processes via
  :mod:`repro.sim.parallel`, sharing each benchmark's base trace
  through an on-disk :class:`~repro.workloads.tracegen.TraceCache`.
  Cells are seeded identically to the serial path, so ``jobs=1`` and
  ``jobs=N`` produce bit-identical results and interchangeable
  checkpoints (a serial run can resume a parallel one and vice
  versa).  The per-point wall-clock budget degrades to a per-cell
  budget under parallelism, since a point's cells no longer run
  back-to-back on one core.
* **supervision** — pass ``supervisor=SupervisorConfig(...)`` to run
  cells under :func:`repro.resilience.run_cells_supervised`: hung
  workers are killed at their deadline, crashed workers respawned and
  their cells resubmitted (bit-identically), repeat offenders
  quarantined as failed outcomes, and a repeatedly breaking pool
  degrades to in-process serial execution instead of aborting the
  grid.  Supervision state never touches result payloads, so a
  supervised grid is byte-identical to an unsupervised one.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, ReproError
from repro.resilience.checkpoint import read_checkpoint, write_checkpoint

if TYPE_CHECKING:  # the runtime import is deferred to break a cycle
    from repro.resilience.supervisor import SupervisorConfig
from repro.sim.config import SystemConfig
from repro.sim.driver import run_benchmark
from repro.sim.parallel import (
    CellTask,
    cell_fingerprint,
    reseed_config,
    run_cells,
)
from repro.sim.results import RunResult, run_result_from_dict, run_result_to_dict
from repro.telemetry import TelemetryConfig
from repro.workloads.spec2k import get_benchmark
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceCache, default_trace_cache_dir, generate_trace
from repro.workloads.transport import ensure_decoded

#: Salt for :meth:`Sweep.signature`.  Deliberately pinned at 1 even
#: though the checkpoint *file* layout is now v2
#: (:data:`repro.resilience.checkpoint.CHECKPOINT_FILE_FORMAT`): the
#: signature identifies the grid's *results*, which the file format
#: does not change, and keeping it stable is what lets v1 checkpoints
#: resume under v2 without re-running anything.
CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a name and its candidate values."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")


@dataclass
class RunOutcome:
    """How one (point, benchmark) cell ended."""

    status: str  # "ok" | "failed"
    attempts: int
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "error_type": self.error_type,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunOutcome":
        try:
            return cls(
                status=str(payload["status"]),
                attempts=int(payload["attempts"]),  # type: ignore[arg-type]
                error=payload.get("error"),  # type: ignore[arg-type]
                error_type=payload.get("error_type"),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed RunOutcome payload: {exc}") from exc


@dataclass
class SweepPoint:
    """One point of the cross product with its per-benchmark results."""

    coordinates: Dict[str, object]
    config: SystemConfig
    runs: Dict[str, RunResult] = field(default_factory=dict)
    #: Per-benchmark completion records (present for every attempted
    #: cell; ``runs`` only holds the successful ones).
    outcomes: Dict[str, RunOutcome] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Stable identity of this point for checkpoint files."""
        return json.dumps(
            {k: str(v) for k, v in self.coordinates.items()}, sort_keys=True
        )

    @property
    def complete(self) -> bool:
        """Every attempted benchmark succeeded (vacuously true if none)."""
        return all(o.ok for o in self.outcomes.values())

    def failed_benchmarks(self) -> List[str]:
        return sorted(b for b, o in self.outcomes.items() if not o.ok)

    def mean_ipc(self) -> float:
        if not self.runs:
            raise ConfigurationError("point has no runs")
        return sum(r.ipc for r in self.runs.values()) / len(self.runs)

    def mean_relative(self, base: "SweepPoint") -> float:
        shared = [b for b in self.runs if b in base.runs]
        if not shared:
            raise ConfigurationError("no shared benchmarks with base point")
        return sum(self.runs[b].ipc / base.runs[b].ipc for b in shared) / len(shared)


# Re-exported for callers that used the private name before the logic
# moved to repro.sim.parallel (workers need it importable there).
_reseed_config = reseed_config


class Sweep:
    """Cross-product sweep runner with shared traces.

    ``max_retries`` is the number of *additional* attempts after a
    failed one (total attempts per cell = 1 + max_retries); each
    attempt ``k`` bumps the trace and fault seeds by
    ``k * reseed_step``.  ``point_budget_s`` caps wall-clock per point.
    ``checkpoint_path`` enables crash-tolerant resume (see module
    docstring).  ``jobs`` runs cells on that many worker processes;
    ``trace_cache_dir`` names the on-disk trace store parallel workers
    load from (default: ``$REPRO_TRACE_CACHE``, else a private temp
    directory deleted after the run).  ``checkpoint_every`` flushes the
    checkpoint after that many newly completed cells (default: one
    flush per point).  ``supervisor`` routes cell execution through
    :func:`repro.resilience.run_cells_supervised` (worker deadlines,
    crash recovery, quarantine) — even with ``jobs=1``, where the
    single cell runs in a supervised worker process so its deadline
    stays enforceable.  ``result_store`` (a
    :class:`repro.service.store.ResultStore`) memoizes cells by content
    address across sweeps and callers: pending cells found in the store
    are restored without running (and folded into the checkpoint), and
    fresh first-attempt successes are published back.  Retried cells
    (attempts > 1) are never stored — their reseeded universe is not
    the content address's.
    """

    def __init__(
        self,
        axes: Sequence[SweepAxis],
        build: Callable[..., SystemConfig],
        benchmarks: Iterable[str],
        n_references: int = 200_000,
        seed: int = 1,
        warmup_fraction: float = 0.4,
        max_retries: int = 1,
        reseed_step: int = 1000,
        point_budget_s: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        jobs: int = 1,
        trace_cache_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        telemetry: Optional[TelemetryConfig] = None,
        supervisor: Optional["SupervisorConfig"] = None,
        result_store=None,
    ) -> None:
        if not axes:
            raise ConfigurationError("sweep needs at least one axis")
        self.axes = list(axes)
        self.build = build
        self.benchmarks = list(benchmarks)
        if not self.benchmarks:
            raise ConfigurationError("sweep needs at least one benchmark")
        for benchmark in self.benchmarks:
            get_benchmark(benchmark)  # unknown names fail here, not per-cell
        if n_references <= 0:
            raise ConfigurationError(
                f"n_references must be positive, got {n_references}"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if reseed_step <= 0:
            raise ConfigurationError(f"reseed_step must be positive, got {reseed_step}")
        if point_budget_s is not None and point_budget_s <= 0:
            raise ConfigurationError("point_budget_s must be positive")
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        cpus = os.cpu_count() or 1
        if jobs > cpus:
            warnings.warn(
                f"Sweep(jobs={jobs}) oversubscribes {cpus} CPUs; workers will "
                "time-slice and wall-clock speedup will degrade",
                RuntimeWarning,
                stacklevel=2,
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.n_references = n_references
        self.seed = seed
        self.warmup_fraction = warmup_fraction
        self.max_retries = max_retries
        self.reseed_step = reseed_step
        self.point_budget_s = point_budget_s
        self.checkpoint_path = checkpoint_path
        self.jobs = jobs
        self.trace_cache_dir = trace_cache_dir
        self.checkpoint_every = checkpoint_every
        self.telemetry = telemetry
        self.supervisor = supervisor
        self.result_store = result_store
        self._traces: Dict[str, Trace] = {}

    def _store_key(self, config: SystemConfig, benchmark: str) -> Optional[str]:
        """The cell's content address (same key every execution path uses)."""
        if self.result_store is None:
            return None
        probe = CellTask(
            index=0,
            config=config,
            benchmark=benchmark,
            n_references=self.n_references,
            seed=self.seed,
            warmup_fraction=self.warmup_fraction,
            telemetry=self.telemetry,
        )
        return cell_fingerprint(probe)

    def _trace(self, benchmark: str, attempt: int = 0) -> Trace:
        """The shared base trace, or a fresh reseeded one for retries."""
        if attempt:
            return generate_trace(
                get_benchmark(benchmark),
                self.n_references,
                seed=self.seed + attempt * self.reseed_step,
            )
        if benchmark not in self._traces:
            self._traces[benchmark] = generate_trace(
                get_benchmark(benchmark), self.n_references, seed=self.seed
            )
        return self._traces[benchmark]

    def points(self) -> List[SweepPoint]:
        """The un-run cross product (for inspection or custom driving)."""
        names = [axis.name for axis in self.axes]
        result = []
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            coordinates = dict(zip(names, combo))
            config = self.build(**coordinates)
            if not isinstance(config, SystemConfig):
                raise ConfigurationError("build() must return a SystemConfig")
            result.append(SweepPoint(coordinates=coordinates, config=config))
        return result

    # --- checkpointing ---

    def signature(self) -> str:
        """Hash of everything that determines the grid's results.

        A checkpoint written under one signature is refused under
        another, so a stale file can never leak foreign results into a
        resumed sweep.
        """
        payload = {
            "format": CHECKPOINT_FORMAT,
            "axes": [
                {"name": a.name, "values": [str(v) for v in a.values]}
                for a in self.axes
            ],
            "configs": [p.config.name for p in self.points()],
            "benchmarks": self.benchmarks,
            "n_references": self.n_references,
            "seed": self.seed,
            "warmup_fraction": self.warmup_fraction,
            "max_retries": self.max_retries,
            "reseed_step": self.reseed_step,
            # Telemetry payloads live inside checkpointed results, so a
            # resume with different collection settings must not splice
            # cells with mismatched (or missing) telemetry together.
            "telemetry": None
            if self.telemetry is None
            else self.telemetry.fingerprint(),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()

    def _load_checkpoint(self, signature: str) -> Dict[str, Dict[str, dict]]:
        """Completed cells from a prior run, keyed by point then bench.

        Handled by :func:`repro.resilience.read_checkpoint`: v2 files
        are checksum-verified, v1 files migrate transparently, and
        corrupted files are salvaged cell-by-cell (with a warning and
        runtime counters) instead of refusing the resume.  Only a
        signature mismatch — or a file mangled beyond recovering even
        its signature — still raises.
        """
        path = self.checkpoint_path
        if path is None:
            return {}
        return read_checkpoint(path, signature)

    def _save_checkpoint(
        self, signature: str, cells: Dict[str, Dict[str, dict]]
    ) -> None:
        """Persist completed cells: atomic, checksummed, lock-serialized.

        Delegates to :func:`repro.resilience.write_checkpoint`, which
        seals each record, merges with same-signature cells another
        process may have flushed to the same path, and writes under a
        cross-process file lock.
        """
        path = self.checkpoint_path
        if path is None:
            return
        write_checkpoint(path, signature, cells)

    # --- the run loop ---

    def _flush_every(self) -> int:
        """Cells between checkpoint flushes (default: one point's worth)."""
        if self.checkpoint_every is not None:
            return self.checkpoint_every
        return len(self.benchmarks)

    def _run_cell(
        self, point: SweepPoint, benchmark: str, deadline: Optional[float]
    ) -> Tuple[Optional[RunResult], RunOutcome]:
        """One (point, benchmark) cell: attempt, retry-with-reseed."""
        last_error: Optional[ReproError] = None
        attempts = 0
        for attempt in range(self.max_retries + 1):
            if (
                attempt
                and deadline is not None
                and time.monotonic() >= deadline
            ):
                break
            attempts += 1
            is_cmp = (
                point.config.cmp is not None and point.config.cmp.cores > 1
            )
            try:
                result = run_benchmark(
                    _reseed_config(point.config, attempt * self.reseed_step),
                    benchmark,
                    n_references=self.n_references,
                    trace=None if is_cmp else self._trace(benchmark, attempt),
                    warmup_fraction=self.warmup_fraction,
                    seed=self.seed + attempt * self.reseed_step,
                    telemetry=self.telemetry,
                )
                return result, RunOutcome(status="ok", attempts=attempts)
            except ReproError as exc:
                # Modeled failures (faults, configuration of this point)
                # stay inside the cell; simulator bugs propagate.
                last_error = exc
        if attempts == 0:
            message, error_type = "point budget exhausted before attempt", "Budget"
        else:
            assert last_error is not None
            message, error_type = str(last_error), type(last_error).__name__
        return None, RunOutcome(
            status="failed", attempts=attempts, error=message, error_type=error_type
        )

    def run(
        self, resume: bool = True, jobs: Optional[int] = None
    ) -> List[SweepPoint]:
        """Run every point over every benchmark; returns filled points.

        With ``checkpoint_path`` set and ``resume`` true, completed
        cells found in the checkpoint are restored instead of re-run.
        Failed cells are recorded (not raised); inspect
        ``point.outcomes`` / ``point.failed_benchmarks()``.  ``jobs``
        overrides the constructor's worker count for this invocation;
        results are bit-identical for any worker count.
        """
        jobs = self.jobs if jobs is None else jobs
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        points = self.points()
        signature = self.signature()
        cells = self._load_checkpoint(signature) if resume else {}
        pending: List[Tuple[int, str]] = []
        for index, point in enumerate(points):
            saved = cells.setdefault(point.key, {})
            for benchmark in self.benchmarks:
                cached = saved.get(benchmark)
                if cached is None:
                    pending.append((index, benchmark))
                    continue
                point.outcomes[benchmark] = RunOutcome.from_dict(
                    cached["outcome"]
                )
                if cached.get("result") is not None:
                    point.runs[benchmark] = run_result_from_dict(
                        cached["result"]
                    )
        if pending and self.result_store is not None:
            # Second chance before simulating: cells memoized by any
            # earlier caller (a service run, another sweep, run_suite)
            # restore from the store and fold into the checkpoint.
            still_pending: List[Tuple[int, str]] = []
            restored = 0
            for index, benchmark in pending:
                key = self._store_key(points[index].config, benchmark)
                stored = None if key is None else self.result_store.get(key)
                if stored is None:
                    still_pending.append((index, benchmark))
                    continue
                point = points[index]
                point.outcomes[benchmark] = RunOutcome.from_dict(
                    stored["outcome"]
                )
                if stored.get("result") is not None:
                    point.runs[benchmark] = run_result_from_dict(
                        stored["result"]
                    )
                cells[point.key][benchmark] = {
                    "outcome": dict(stored["outcome"]),
                    "result": stored.get("result"),
                }
                restored += 1
            pending = still_pending
            if restored and self.checkpoint_path is not None:
                self._save_checkpoint(signature, cells)
        if not pending:
            return points
        # The flush state lives here — not in the runner methods — so a
        # KeyboardInterrupt (or any exception) anywhere below still
        # persists every completed cell on the way out.
        state = {"dirty": 0}
        try:
            if jobs == 1 and self.supervisor is None:
                self._run_serial(points, signature, cells, pending, state)
            else:
                self._run_parallel(points, signature, cells, pending, jobs, state)
        finally:
            if state["dirty"]:
                self._save_checkpoint(signature, cells)
        return points

    def _record_cell(
        self,
        points: List[SweepPoint],
        cells: Dict[str, Dict[str, dict]],
        index: int,
        benchmark: str,
        result: Optional[RunResult],
        outcome: RunOutcome,
    ) -> None:
        point = points[index]
        point.outcomes[benchmark] = outcome
        if result is not None:
            point.runs[benchmark] = result
        record = {
            "outcome": outcome.to_dict(),
            "result": None if result is None else run_result_to_dict(result),
        }
        cells[point.key][benchmark] = record
        # Publish first-attempt successes for every later caller; a
        # retried success ran under reseeded parameters and is not this
        # content address's answer.
        if self.result_store is not None and outcome.ok and outcome.attempts == 1:
            key = self._store_key(point.config, benchmark)
            if key is not None:
                self.result_store.put(key, record)

    def _run_serial(
        self,
        points: List[SweepPoint],
        signature: str,
        cells: Dict[str, Dict[str, dict]],
        pending: List[Tuple[int, str]],
        state: Dict[str, int],
    ) -> None:
        flush_every = self._flush_every()
        deadline: Optional[float] = None
        current: Optional[int] = None
        for index, benchmark in pending:
            if index != current:
                current = index
                # The budget clock starts at the point's first
                # non-cached cell, so resumed points get a full
                # allowance for their remaining work.
                deadline = (
                    time.monotonic() + self.point_budget_s
                    if self.point_budget_s is not None
                    else None
                )
            if deadline is not None and time.monotonic() >= deadline:
                result: Optional[RunResult] = None
                outcome = RunOutcome(
                    status="failed",
                    attempts=0,
                    error="point budget exhausted",
                    error_type="Budget",
                )
            else:
                result, outcome = self._run_cell(
                    points[index], benchmark, deadline
                )
            self._record_cell(points, cells, index, benchmark, result, outcome)
            state["dirty"] += 1
            if state["dirty"] >= flush_every:
                self._save_checkpoint(signature, cells)
                state["dirty"] = 0

    def _run_parallel(
        self,
        points: List[SweepPoint],
        signature: str,
        cells: Dict[str, Dict[str, dict]],
        pending: List[Tuple[int, str]],
        jobs: int,
        state: Dict[str, int],
    ) -> None:
        cache_dir = self.trace_cache_dir or default_trace_cache_dir()
        scratch: Optional[str] = None
        if cache_dir is None:
            scratch = tempfile.mkdtemp(prefix="repro-trace-cache-")
            cache_dir = scratch
        cache = TraceCache(cache_dir)
        # Each benchmark's shared base trace is generated (or found)
        # once in the parent; workers mmap-load the .npz instead of
        # regenerating per cell.
        paths = {
            benchmark: cache.ensure(benchmark, self.n_references, seed=self.seed)
            for benchmark in sorted({b for _, b in pending})
        }
        mmap_paths = {
            benchmark: ensure_decoded(path)
            for benchmark, path in paths.items()
        }
        tasks = [
            CellTask(
                index=position,
                config=points[index].config,
                benchmark=benchmark,
                n_references=self.n_references,
                seed=self.seed,
                warmup_fraction=self.warmup_fraction,
                # CMP cells interleave per-core traces in the worker
                # (_attempt_trace returns None for them anyway).
                trace_path=(
                    None
                    if points[index].config.cmp is not None
                    and points[index].config.cmp.cores > 1
                    else paths[benchmark]
                ),
                mmap_path=(
                    None
                    if points[index].config.cmp is not None
                    and points[index].config.cmp.cores > 1
                    else mmap_paths[benchmark]
                ),
                max_retries=self.max_retries,
                reseed_step=self.reseed_step,
                budget_s=self.point_budget_s,
                telemetry=self.telemetry,
            )
            for position, (index, benchmark) in enumerate(pending)
        ]
        flush_every = self._flush_every()

        def record(payload: Dict[str, object]) -> None:
            index, benchmark = pending[payload["index"]]  # type: ignore[index]
            outcome = RunOutcome.from_dict(payload["outcome"])  # type: ignore[arg-type]
            raw = payload.get("result")
            result = None if raw is None else run_result_from_dict(raw)  # type: ignore[arg-type]
            self._record_cell(points, cells, index, benchmark, result, outcome)
            state["dirty"] += 1
            if state["dirty"] >= flush_every:
                self._save_checkpoint(signature, cells)
                state["dirty"] = 0

        try:
            if self.supervisor is not None:
                from repro.resilience.supervisor import run_cells_supervised

                run_cells_supervised(
                    tasks, jobs, config=self.supervisor, callback=record
                )
            else:
                run_cells(tasks, jobs, callback=record)
        finally:
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)


def tabulate(points: Sequence[SweepPoint], metric: Callable[[SweepPoint], float]) -> str:
    """Render sweep results as an aligned text table.

    Points whose metric cannot be computed (all-failed cells, missing
    base runs) render as ``failed`` instead of aborting the table.
    """
    if not points:
        raise ConfigurationError("nothing to tabulate")
    names = list(points[0].coordinates)
    header = "  ".join(f"{n:<16}" for n in names) + "  metric"
    lines = [header]
    for point in points:
        cells = "  ".join(f"{str(point.coordinates[n]):<16}" for n in names)
        try:
            rendered = f"{metric(point):.4f}"
        except ReproError:
            rendered = "failed"
        lines.append(f"{cells}  {rendered}")
    return "\n".join(lines)

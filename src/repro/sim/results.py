"""Per-run result records and suite-level aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ConfigurationError


@dataclass
class RunResult:
    """Everything measured from one (benchmark, system) run."""

    benchmark: str
    config_name: str
    instructions: int
    cycles: float
    #: L2-level counts (measured portion only).
    l2_accesses: int
    l2_hits: int
    l2_misses: int
    #: Fraction of L2 accesses hitting each d-group (or D-NUCA level).
    dgroup_fractions: Dict[int, float]
    l1_energy_nj: float
    lower_energy_nj: float
    core_energy_nj: float
    stats: Dict[str, float] = field(default_factory=dict)
    #: Telemetry payload (see :mod:`repro.telemetry`); None when the
    #: run was not telemetry-enabled.  Excluded from result-equality
    #: comparisons of the simulated quantities above by convention:
    #: strip it (``result.telemetry = None``) before comparing.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l2_miss_fraction(self) -> float:
        if not self.l2_accesses:
            return 0.0
        return self.l2_misses / self.l2_accesses

    @property
    def l2_apki(self) -> float:
        """L2 accesses per kilo-instruction (the Table 3 metric)."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_accesses / self.instructions

    @property
    def total_energy_nj(self) -> float:
        return self.core_energy_nj + self.l1_energy_nj + self.lower_energy_nj

    @property
    def energy_delay(self) -> float:
        return self.total_energy_nj * self.cycles


def run_result_to_dict(result: RunResult) -> Dict[str, object]:
    """A JSON-safe payload for checkpoint files (see sim.sweep).

    Numeric fields are coerced to the exact types
    :func:`run_result_from_dict` restores (floats for cycles, stats,
    and fractions; ints for counts), so serialization is *byte-stable*:
    ``to_dict(from_dict(to_dict(r)))`` encodes to the same JSON bytes
    as ``to_dict(r)``.  Without this, a result that crossed a worker
    boundary (or the result store) would carry ``315.0`` where a fresh
    in-process result carries ``315`` — numerically equal, but not the
    byte-identity the parity tests and the service promise.
    """
    payload: Dict[str, object] = {
        "benchmark": result.benchmark,
        "config_name": result.config_name,
        "instructions": int(result.instructions),
        "cycles": float(result.cycles),
        # JSON objects only have string keys; restored by from_dict.
        "dgroup_fractions": {
            str(k): float(v) for k, v in result.dgroup_fractions.items()
        },
        "l2_accesses": int(result.l2_accesses),
        "l2_hits": int(result.l2_hits),
        "l2_misses": int(result.l2_misses),
        "l1_energy_nj": float(result.l1_energy_nj),
        "lower_energy_nj": float(result.lower_energy_nj),
        "core_energy_nj": float(result.core_energy_nj),
        "stats": {str(k): float(v) for k, v in result.stats.items()},
    }
    if result.telemetry is not None:
        payload["telemetry"] = result.telemetry
    return payload


def run_result_from_dict(payload: Mapping[str, object]) -> RunResult:
    """Inverse of :func:`run_result_to_dict`."""
    try:
        fractions = {
            int(k): float(v)
            for k, v in dict(payload["dgroup_fractions"]).items()  # type: ignore[arg-type]
        }
        return RunResult(
            benchmark=str(payload["benchmark"]),
            config_name=str(payload["config_name"]),
            instructions=int(payload["instructions"]),  # type: ignore[arg-type]
            cycles=float(payload["cycles"]),  # type: ignore[arg-type]
            l2_accesses=int(payload["l2_accesses"]),  # type: ignore[arg-type]
            l2_hits=int(payload["l2_hits"]),  # type: ignore[arg-type]
            l2_misses=int(payload["l2_misses"]),  # type: ignore[arg-type]
            dgroup_fractions=fractions,
            l1_energy_nj=float(payload["l1_energy_nj"]),  # type: ignore[arg-type]
            lower_energy_nj=float(payload["lower_energy_nj"]),  # type: ignore[arg-type]
            core_energy_nj=float(payload["core_energy_nj"]),  # type: ignore[arg-type]
            stats={str(k): float(v) for k, v in dict(payload["stats"]).items()},  # type: ignore[arg-type]
            telemetry=payload.get("telemetry"),  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed RunResult payload: {exc}") from exc


def relative_performance(result: RunResult, base: RunResult) -> float:
    """IPC ratio against the base system (the paper's y-axis)."""
    if result.benchmark != base.benchmark:
        raise ConfigurationError(
            f"comparing {result.benchmark} against {base.benchmark}"
        )
    if base.ipc == 0:
        raise ConfigurationError("base run has zero IPC")
    return result.ipc / base.ipc


def mean_distribution(results: List[RunResult], keys: List[int]) -> Dict[int, float]:
    """Arithmetic mean of per-benchmark d-group fractions.

    Matches the paper's figures, which average the per-application
    stacked bars rather than pooling raw access counts.
    """
    if not results:
        raise ConfigurationError("no results to average")
    return {
        key: sum(r.dgroup_fractions.get(key, 0.0) for r in results) / len(results)
        for key in keys
    }


def mean_miss_fraction(results: List[RunResult]) -> float:
    if not results:
        raise ConfigurationError("no results to average")
    return sum(r.l2_miss_fraction for r in results) / len(results)


@dataclass
class SuiteResult:
    """All benchmarks' runs for one system configuration."""

    config_name: str
    runs: Dict[str, RunResult]

    def relative_to(self, base: "SuiteResult") -> Dict[str, float]:
        """Per-benchmark relative performance against a base suite."""
        shared = [b for b in self.runs if b in base.runs]
        if not shared:
            raise ConfigurationError("suites share no benchmarks")
        return {
            b: relative_performance(self.runs[b], base.runs[b]) for b in shared
        }

    def mean_relative(self, base: "SuiteResult", benchmarks=None) -> float:
        """Arithmetic-mean relative performance (the paper's 'average')."""
        rel = self.relative_to(base)
        names = benchmarks if benchmarks is not None else sorted(rel)
        values = [rel[b] for b in names if b in rel]
        if not values:
            raise ConfigurationError("no shared benchmarks to average")
        return sum(values) / len(values)

    def mean_dgroup_fractions(self, keys: List[int]) -> Dict[int, float]:
        return mean_distribution(list(self.runs.values()), keys)

    def mean_miss_fraction(self) -> float:
        return mean_miss_fraction(list(self.runs.values()))

    def total_lower_energy_nj(self) -> float:
        return sum(r.lower_energy_nj for r in self.runs.values())

    def stat_total(self, name: str) -> float:
        return sum(r.stats.get(name, 0.0) for r in self.runs.values())


def format_fraction_table(
    rows: Mapping[str, Mapping[int, float]], keys: List[int], miss: Mapping[str, float]
) -> str:
    """Render stacked-bar data (per-benchmark fractions) as text."""
    header = "benchmark".ljust(12) + "".join(f"dg{k:>2}   " for k in keys) + "miss"
    lines = [header]
    for name in rows:
        cells = "".join(f"{rows[name].get(k, 0.0):6.1%} " for k in keys)
        lines.append(f"{name:<12}{cells}{miss.get(name, 0.0):6.1%}")
    return "\n".join(lines)

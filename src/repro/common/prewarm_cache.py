"""Process-wide prewarm prototype registry.

Prewarming a large cache model builds the same steady-state containers
(tag dicts, frame stores, policy recency) every time a cache of the
same shape is constructed — profiling shows it is ~40% of a NuRAPID
cell's setup, repeated for every benchmark x config x repetition.  The
fill itself draws no RNG and charges no stats or energy, so its result
is a pure function of the cache's construction parameters: the first
prewarm of a given key snapshots the filled containers here, and later
prewarms of the same key restore a fresh copy instead of re-running
the fill.  Both directions copy, so prototypes never alias live cache
state; restore is bit-identical to a re-run by construction (the
snapshot is the re-run's exact output).

``REPRO_PREWARM_CACHE=0`` (or ``off``/``no``/``false``) disables the
registry, forcing every prewarm to run the full fill — the escape
hatch for debugging and for the parity tests that prove restore and
re-run agree.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional

#: Distinct cache shapes retained (FIFO).  Suites sweep only a handful
#: of shapes; the cap bounds memory if something generates many.
MAX_PROTOTYPES = 8

_snapshots: "OrderedDict[str, object]" = OrderedDict()


def enabled() -> bool:
    """Whether prototype reuse is on (default) — $REPRO_PREWARM_CACHE gate."""
    flag = os.environ.get("REPRO_PREWARM_CACHE", "1").strip().lower()
    return flag not in {"0", "off", "no", "false"}


def get(key: str) -> Optional[object]:
    """The stored prototype for ``key``, or None."""
    if not enabled():
        return None
    return _snapshots.get(key)


def put(key: str, snapshot: object) -> None:
    """Store ``snapshot`` under ``key`` (evicting the oldest past the cap)."""
    if not enabled():
        return
    _snapshots[key] = snapshot
    while len(_snapshots) > MAX_PROTOTYPES:
        _snapshots.popitem(last=False)


def clear() -> None:
    """Drop every prototype (tests)."""
    _snapshots.clear()

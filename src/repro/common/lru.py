"""Generic eviction/victim-selection policies.

The same machinery backs two very different users:

* *data replacement* within a cache set (a handful of ways, where the
  paper uses true LRU), and
* *distance replacement* within a NuRAPID d-group (thousands of frames,
  where the paper argues true LRU is too expensive in hardware and
  evaluates random and approximate alternatives — §2.4.2, §5.3.1).

A policy tracks an arbitrary collection of hashable keys.  ``touch``
records a use, ``insert`` adds a new key, ``pop_victim`` selects and
removes the key the policy would replace, and ``remove`` handles keys
that leave for external reasons (eviction from the cache, demotion out
of a d-group).
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, Iterable, Iterator, List, Optional

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRNG


class EvictionPolicy(abc.ABC):
    """Interface shared by all victim-selection policies."""

    @abc.abstractmethod
    def insert(self, key: Hashable) -> None:
        """Start tracking ``key`` (as most-recently-used where relevant)."""

    @abc.abstractmethod
    def touch(self, key: Hashable) -> None:
        """Record a use of ``key``."""

    @abc.abstractmethod
    def remove(self, key: Hashable) -> None:
        """Stop tracking ``key``."""

    @abc.abstractmethod
    def victim(self) -> Hashable:
        """Return (without removing) the key that would be replaced next."""

    @abc.abstractmethod
    def __len__(self) -> int:
        ...

    @abc.abstractmethod
    def __contains__(self, key: Hashable) -> bool:
        ...

    def pop_victim(self) -> Hashable:
        """Select a victim, remove it from tracking, and return it."""
        key = self.victim()
        self.remove(key)
        return key

    def insert_many(self, keys: Iterable[Hashable]) -> None:
        """Insert ``keys`` in order; equivalent to ``insert`` per key.

        Bulk-state setup (cache prewarm inserts one key per frame, tens
        of thousands of times) goes through this so subclasses can
        replace the per-key call chain with one container update.
        """
        for key in keys:
            self.insert(key)

    def state_copy(self) -> object:
        """Snapshot the tracked-key state (not any RNG) as plain containers.

        ``other.load_state(snapshot)`` restores a policy of the same
        class to exactly this tracking state; both directions copy, so
        snapshots never alias live policy containers.  Used by the
        prewarm prototype cache to clone steady-state setup instead of
        re-running it.
        """
        raise SimulationError(f"{type(self).__name__} does not support state_copy")

    def load_state(self, state: object) -> None:
        """Install a :meth:`state_copy` snapshot (copying it)."""
        raise SimulationError(f"{type(self).__name__} does not support load_state")


class LRUPolicy(EvictionPolicy):
    """True least-recently-used.

    Backed by dict insertion order: most-recently-used keys live at the
    back, so the victim is the first key in iteration order.  All
    operations are O(1).
    """

    def __init__(self) -> None:
        self._order: Dict[Hashable, None] = {}

    def insert(self, key: Hashable) -> None:
        if key in self._order:
            raise SimulationError(f"duplicate insert of {key!r} into LRUPolicy")
        self._order[key] = None

    def touch(self, key: Hashable) -> None:
        try:
            del self._order[key]
        except KeyError:
            raise SimulationError(f"touch of untracked key {key!r}") from None
        self._order[key] = None

    def remove(self, key: Hashable) -> None:
        try:
            del self._order[key]
        except KeyError:
            raise SimulationError(f"remove of untracked key {key!r}") from None

    def insert_many(self, keys: Iterable[Hashable]) -> None:
        keys = list(keys)
        order = self._order
        before = len(order)
        order.update(dict.fromkeys(keys))
        if len(order) != before + len(keys):
            raise SimulationError("duplicate key in LRUPolicy.insert_many")

    def victim(self) -> Hashable:
        try:
            return next(iter(self._order))
        except StopIteration:
            raise SimulationError("victim() on empty LRUPolicy") from None

    def lru_to_mru(self) -> Iterator[Hashable]:
        """Iterate keys from least to most recently used (for tests)."""
        return iter(self._order)

    def state_copy(self) -> object:
        return dict(self._order)

    def load_state(self, state: object) -> None:
        self._order = dict(state)  # type: ignore[call-overload]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order


class RandomPolicy(EvictionPolicy):
    """Uniform-random victim selection.

    The paper's practical choice for distance replacement in large
    d-groups (§2.4.2): hardware-trivial, and its occasional mistakes
    (demoting a hot block) are repaired by the promotion policy.

    Uses a swap-remove list plus an index map so selection and removal
    are O(1).  ``victim``/``pop_victim`` draw from the instance's own
    deterministic stream.
    """

    def __init__(self, rng: DeterministicRNG) -> None:
        self._rng = rng
        self._keys: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self._pending_victim: Optional[Hashable] = None

    def insert(self, key: Hashable) -> None:
        if key in self._index:
            raise SimulationError(f"duplicate insert of {key!r} into RandomPolicy")
        self._index[key] = len(self._keys)
        self._keys.append(key)

    def insert_many(self, keys: Iterable[Hashable]) -> None:
        keys = list(keys)
        index = self._index
        base = len(self._keys)
        for pos, key in enumerate(keys):
            if key in index:
                raise SimulationError("duplicate key in RandomPolicy.insert_many")
            index[key] = base + pos
        self._keys.extend(keys)

    def touch(self, key: Hashable) -> None:
        if key not in self._index:
            raise SimulationError(f"touch of untracked key {key!r}")
        # Random replacement is stateless with respect to recency, but a
        # touch invalidates any previously-peeked victim choice.
        if self._pending_victim == key:
            self._pending_victim = None

    def remove(self, key: Hashable) -> None:
        try:
            pos = self._index.pop(key)
        except KeyError:
            raise SimulationError(f"remove of untracked key {key!r}") from None
        last = self._keys.pop()
        if last != key:
            self._keys[pos] = last
            self._index[last] = pos
        if self._pending_victim == key:
            self._pending_victim = None

    def victim(self) -> Hashable:
        if not self._keys:
            raise SimulationError("victim() on empty RandomPolicy")
        if self._pending_victim is None or self._pending_victim not in self._index:
            self._pending_victim = self._keys[self._rng.randint(0, len(self._keys) - 1)]
        return self._pending_victim

    def state_copy(self) -> object:
        # The RNG stream is deliberately NOT part of the snapshot: the
        # restoring policy keeps its own (identically-seeded) stream.
        return (list(self._keys), dict(self._index), self._pending_victim)

    def load_state(self, state: object) -> None:
        keys, index, pending = state  # type: ignore[misc]
        self._keys = list(keys)
        self._index = dict(index)
        self._pending_victim = pending

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index


class ApproxLRUPolicy(EvictionPolicy):
    """One-bit clock (second-chance) approximation of LRU.

    Models the "approximate-LRU" design point the paper mentions as a
    middle ground between true LRU's O(n^2) hardware and random's
    accidental demotions.  Each tracked key has a reference bit; the
    clock hand sweeps, clearing bits, and evicts the first key whose
    bit is already clear.
    """

    def __init__(self) -> None:
        self._keys: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self._refbit: Dict[Hashable, bool] = {}
        self._hand = 0

    def insert(self, key: Hashable) -> None:
        if key in self._index:
            raise SimulationError(f"duplicate insert of {key!r} into ApproxLRUPolicy")
        self._index[key] = len(self._keys)
        self._keys.append(key)
        self._refbit[key] = True

    def insert_many(self, keys: Iterable[Hashable]) -> None:
        keys = list(keys)
        index = self._index
        base = len(self._keys)
        for pos, key in enumerate(keys):
            if key in index:
                raise SimulationError("duplicate key in ApproxLRUPolicy.insert_many")
            index[key] = base + pos
        self._keys.extend(keys)
        self._refbit.update(dict.fromkeys(keys, True))

    def touch(self, key: Hashable) -> None:
        if key not in self._index:
            raise SimulationError(f"touch of untracked key {key!r}")
        self._refbit[key] = True

    def remove(self, key: Hashable) -> None:
        try:
            pos = self._index.pop(key)
        except KeyError:
            raise SimulationError(f"remove of untracked key {key!r}") from None
        del self._refbit[key]
        last = self._keys.pop()
        if last != key:
            self._keys[pos] = last
            self._index[last] = pos
        if self._hand >= len(self._keys):
            self._hand = 0

    def victim(self) -> Hashable:
        if not self._keys:
            raise SimulationError("victim() on empty ApproxLRUPolicy")
        # Sweep at most two full revolutions: the first may clear every
        # reference bit, the second must then find a clear one.
        for _ in range(2 * len(self._keys)):
            key = self._keys[self._hand]
            if self._refbit[key]:
                self._refbit[key] = False
                self._hand = (self._hand + 1) % len(self._keys)
            else:
                return key
        return self._keys[self._hand]

    def state_copy(self) -> object:
        return (list(self._keys), dict(self._index), dict(self._refbit), self._hand)

    def load_state(self, state: object) -> None:
        keys, index, refbit, hand = state  # type: ignore[misc]
        self._keys = list(keys)
        self._index = dict(index)
        self._refbit = dict(refbit)
        self._hand = hand

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index


def make_policy(name: str, rng: Optional[DeterministicRNG] = None) -> EvictionPolicy:
    """Build an eviction policy by name: ``lru``, ``random``, or ``approx-lru``.

    ``random`` requires an ``rng``; the others ignore it.
    """
    if name == "lru":
        return LRUPolicy()
    if name == "approx-lru":
        return ApproxLRUPolicy()
    if name == "random":
        if rng is None:
            raise ValueError("random policy requires an rng")
        return RandomPolicy(rng)
    raise ValueError(f"unknown eviction policy {name!r}")

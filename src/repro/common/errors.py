"""Exception hierarchy for the repro package.

All errors raised intentionally by the simulator derive from
:class:`ReproError` so callers can catch simulator problems without
swallowing genuine Python bugs (``TypeError``, ``KeyError``, ...).
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters.

    Raised eagerly at construction time (never mid-simulation) so that
    a bad experiment config fails before any cycles are simulated.
    """


class SimulationError(ReproError):
    """An invariant was violated while a simulation was running.

    This always indicates a bug in the simulator (or a hand-corrupted
    state), never a property of the simulated workload.
    """

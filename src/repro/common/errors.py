"""Exception hierarchy for the repro package.

All errors raised intentionally by the simulator derive from
:class:`ReproError` so callers can catch simulator problems without
swallowing genuine Python bugs (``TypeError``, ``KeyError``, ...).
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters.

    Raised eagerly at construction time (never mid-simulation) so that
    a bad experiment config fails before any cycles are simulated.
    """


class SimulationError(ReproError):
    """An invariant was violated while a simulation was running.

    This always indicates a bug in the simulator (or a hand-corrupted
    state), never a property of the simulated workload.
    """


class FaultError(ReproError):
    """A modeled hardware fault had architecturally visible effects.

    Unlike :class:`SimulationError`, this is a *property of the
    simulated machine* under fault injection (:mod:`repro.faults`), not
    a simulator bug: the run was healthy but the injected fault could
    not be masked by ECC or spares.
    """


class IntegrityError(ReproError):
    """On-disk state failed an integrity check (checksum, schema).

    Raised when a checkpoint or cache artifact is provably corrupted
    *and* nothing useful can be recovered from it; recoverable
    corruption is salvaged (with a warning and a telemetry counter)
    instead of raised.
    """


class SupervisionError(ReproError):
    """The supervised executor gave up on a cell or its worker pool.

    Subclasses say why.  These surface in the parent only for
    non-isolated cells (suite semantics); sweep-style isolated cells
    record them as failed outcomes instead.
    """


class WorkerTimeoutError(SupervisionError):
    """A cell exceeded its wall-clock deadline and its worker was killed."""

    def __init__(self, index: int, timeout_s: float, kills: int) -> None:
        super().__init__(
            f"cell {index} exceeded its {timeout_s:g}s wall-clock deadline "
            f"({kills} worker kill{'s' if kills != 1 else ''}); quarantined"
        )
        self.index = index
        self.timeout_s = timeout_s
        self.kills = kills

    def __reduce__(self):
        return (type(self), (self.index, self.timeout_s, self.kills))


class WorkerCrashError(SupervisionError):
    """A worker process died (signal, OOM kill) while running a cell."""

    def __init__(self, index: int, kills: int) -> None:
        super().__init__(
            f"worker died while running cell {index} "
            f"({kills} time{'s' if kills != 1 else ''}); quarantined"
        )
        self.index = index
        self.kills = kills

    def __reduce__(self):
        return (type(self), (self.index, self.kills))


class UncorrectableDataError(FaultError):
    """A detected-uncorrectable upset hit a dirty line.

    A clean line can be silently refetched from the level below; a
    dirty line holds the only copy of its data, so the machine must
    signal data loss.  The sweep runner isolates and records these
    instead of aborting a whole experiment grid.
    """

    def __init__(self, level: str, address: int, access_index: int) -> None:
        super().__init__(
            f"uncorrectable upset on dirty line {address:#x} in {level} "
            f"(access #{access_index})"
        )
        self.level = level
        self.address = address
        self.access_index = access_index

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args``
        # (the formatted message), which doesn't match this signature;
        # parallel workers re-raise these across process boundaries,
        # so rebuild from the original fields instead.
        return (type(self), (self.level, self.address, self.access_index))

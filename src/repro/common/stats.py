"""Statistics containers used throughout the simulator.

These are intentionally simple: named counters, ratio statistics
(hits/accesses), and small integer-keyed distributions (accesses per
d-group).  Every cache and experiment exposes its measurements through
these types so the experiment harness can aggregate uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple


class Counter:
    """A named group of monotonically increasing counters.

    Totals stay int-exact as long as every increment is an int: the
    sum of integer event counts never drifts through float rounding,
    and ``merge()`` over any partition of the increments reproduces the
    serial total bit for bit.  A single float increment (weights,
    energies) switches that counter to float arithmetic.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def names(self) -> Iterable[str]:
        return self._counts.keys()

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def merge(self, other: "Counter") -> None:
        for name, value in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + value

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy, for later :meth:`diff`."""
        return dict(self._counts)

    def diff(self, since: Mapping[str, float]) -> Dict[str, float]:
        """Per-name growth since a :meth:`snapshot` (zero deltas omitted)."""
        return {
            name: value - since.get(name, 0)
            for name, value in self._counts.items()
            if value != since.get(name, 0)
        }

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


@dataclass
class RatioStat:
    """Numerator/denominator pair with a safe ratio.

    Used for hit rates, first-d-group fractions, and similar shares
    where the denominator may legitimately be zero early in a run.
    """

    numerator: float = 0.0
    denominator: float = 0.0

    def record(self, success: bool, weight: float = 1.0) -> None:
        self.denominator += weight
        if success:
            self.numerator += weight

    @property
    def ratio(self) -> float:
        if self.denominator == 0:
            return 0.0
        return self.numerator / self.denominator

    def merge(self, other: "RatioStat") -> None:
        self.numerator += other.numerator
        self.denominator += other.denominator


@dataclass
class Distribution:
    """Counts keyed by small integers (e.g. accesses per d-group).

    Like :class:`Counter`, integer increments keep int-exact totals so
    merged per-worker distributions equal the serial run exactly.
    """

    counts: Dict[int, float] = field(default_factory=dict)

    def add(self, key: int, amount: float = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + amount

    @property
    def total(self) -> float:
        return sum(self.counts.values())

    def fraction(self, key: int) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.counts.get(key, 0.0) / total

    def fractions(self) -> Dict[int, float]:
        total = self.total
        if total == 0:
            return {}
        return {key: value / total for key, value in sorted(self.counts.items())}

    def items(self) -> Iterable[Tuple[int, float]]:
        return sorted(self.counts.items())

    def merge(self, other: "Distribution") -> None:
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value

    def snapshot(self) -> Dict[int, float]:
        """A point-in-time copy, for later :meth:`diff`."""
        return dict(self.counts)

    def diff(self, since: Mapping[int, float]) -> Dict[int, float]:
        """Per-key growth since a :meth:`snapshot` (zero deltas omitted)."""
        return {
            key: value - since.get(key, 0)
            for key, value in self.counts.items()
            if value != since.get(key, 0)
        }


def weighted_mean(values: Mapping[str, float], weights: Mapping[str, float]) -> float:
    """Mean of ``values`` weighted by ``weights`` over their shared keys."""
    keys = [k for k in values if k in weights]
    if not keys:
        raise ValueError("no shared keys between values and weights")
    total_weight = sum(weights[k] for k in keys)
    if total_weight == 0:
        raise ValueError("total weight is zero")
    return sum(values[k] * weights[k] for k in keys) / total_weight


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the conventional aggregate for relative performance."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))

"""Vocabulary types shared by every level of the memory hierarchy.

Addresses are plain integers (byte addresses).  Caches convert them to
block addresses by shifting out the block-offset bits; the types here
carry the raw byte address so the same trace can be replayed against
caches with different block sizes (the paper's L1 uses 32 B blocks
while the L2 organizations use 128 B blocks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class AccessType(enum.Enum):
    """Kind of memory reference issued by the core."""

    READ = "read"
    WRITE = "write"
    IFETCH = "ifetch"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


@dataclass(frozen=True)
class Access:
    """A single memory reference.

    Attributes:
        address: byte address of the reference.
        kind: read / write / instruction fetch.
        pc: program counter of the issuing instruction (used only by
            the workload generator for bookkeeping; 0 when unknown).
    """

    address: int
    kind: AccessType = AccessType.READ
    pc: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")

    def block_address(self, block_size: int) -> int:
        """Return the block-aligned address for ``block_size``-byte blocks."""
        return self.address & ~(block_size - 1)


@dataclass(slots=True)
class AccessResult:
    """Outcome of presenting an access to a cache (or hierarchy).

    Attributes:
        hit: whether the access hit at this level.
        latency: cycles from presentation of the access until data is
            available at this level's output (includes any queueing on
            the cache's port or banks).
        level: name of the level that finally supplied the data, e.g.
            ``"L1"``, ``"L2"``, ``"memory"``.
        dgroup: for non-uniform caches, the index of the distance group
            (or bank generation for D-NUCA) that supplied the data;
            ``None`` for misses and for uniform caches.
        energy_nj: dynamic energy in nanojoules consumed by this access,
            including tag probes, data-array reads, routing, any swaps
            it triggered, and (for D-NUCA) smart-search accesses.
        evicted_dirty: number of dirty blocks this access pushed out of
            the level (used for writeback traffic accounting).
    """

    hit: bool
    latency: float
    level: str = ""
    dgroup: Optional[int] = None
    energy_nj: float = 0.0
    evicted_dirty: int = 0
    extra: dict = field(default_factory=dict)

    def merge_child(self, child: "AccessResult") -> None:
        """Fold a lower level's result into this one (miss path).

        Latency is additive along the miss path; energy is additive
        everywhere; the supplying ``level``/``dgroup`` come from the
        child because the child is where the data actually lived.
        """
        self.latency += child.latency
        self.energy_nj += child.energy_nj
        self.level = child.level
        self.dgroup = child.dgroup
        self.evicted_dirty += child.evicted_dirty

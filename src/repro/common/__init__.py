"""Shared primitives used across all simulator subsystems.

This package deliberately has no dependencies on the cache, CPU, or
technology models: it provides the vocabulary types (memory accesses,
access results), deterministic randomness, generic eviction-policy
machinery (true LRU, approximate LRU, random), and statistics
containers that the rest of :mod:`repro` builds on.
"""

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import Access, AccessResult, AccessType
from repro.common.lru import (
    ApproxLRUPolicy,
    EvictionPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.common.rng import DeterministicRNG
from repro.common.stats import Counter, Distribution, RatioStat

__all__ = [
    "Access",
    "AccessResult",
    "AccessType",
    "ApproxLRUPolicy",
    "ConfigurationError",
    "Counter",
    "DeterministicRNG",
    "Distribution",
    "EvictionPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "RatioStat",
    "SimulationError",
    "make_policy",
]

"""Deterministic random-number generation.

Every stochastic component in the simulator (random distance
replacement, synthetic trace generation, smart-search false hits) draws
from a :class:`DeterministicRNG` seeded from an experiment-level master
seed plus a component label, so that:

* re-running an experiment reproduces its numbers bit-for-bit, and
* two components never share a stream (changing how many numbers one
  consumes cannot perturb another).
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a label.

    Uses SHA-256 so distinct labels give statistically independent
    streams even when master seeds are small consecutive integers.
    """
    digest = hashlib.sha256(f"{master_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRNG:
    """A labeled, reproducible random stream.

    Thin wrapper over :class:`random.Random` that records its seed and
    label for diagnostics and exposes only the operations the simulator
    needs.
    """

    def __init__(self, master_seed: int, label: str) -> None:
        self.master_seed = master_seed
        self.label = label
        self.seed = derive_seed(master_seed, label)
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return f"DeterministicRNG(master_seed={self.master_seed}, label={self.label!r})"

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    def paretovariate(self, alpha: float) -> float:
        return self._rng.paretovariate(alpha)

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including first success."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        count = 1
        while self._rng.random() >= p:
            count += 1
        return count

    def spawn(self, sublabel: str) -> "DeterministicRNG":
        """Create an independent child stream."""
        return DeterministicRNG(self.seed, f"{self.label}/{sublabel}")

"""Fault models: what can go wrong, how often, and how wide.

Two fault classes, mirroring §3's reliability argument:

* **Transient upsets** (soft errors) — a particle strike flips one or
  more adjacent cells of one subarray.  Whether the block survives
  depends on how widely its ECC words are interleaved across subarrays
  (:class:`repro.tech.ecc.InterleavingPlan`): with wide spreading a
  multi-cell strike lands at most one bit per SEC-DED word and is
  corrected; with narrow spreading it produces detected-uncorrectable
  (or, at 3+ bits, silently miscorrected) words.

* **Hard subarray failures** — a whole subarray dies mid-run.  The
  cache first consults its :class:`repro.floorplan.spares.SpareManager`
  for a spare in the affected repair domain; when spares are exhausted
  the subarray's frames are retired and the d-group operates at
  reduced capacity (graceful degradation).

A :class:`FaultPlan` is a frozen description of a fault campaign that
can ride inside a :class:`repro.sim.config.SystemConfig`; the
:class:`repro.faults.injector.FaultInjector` executes it against a
running cache using a :class:`repro.common.rng.DeterministicRNG`, so
campaigns replay bit-for-bit under a fixed seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ConfigurationError

#: Hours per billion device-hours (the FIT normalization constant).
_FIT_HOURS = 1e9
_SECONDS_PER_HOUR = 3600.0


class TransientOutcome(enum.Enum):
    """Architecturally visible result of one transient upset."""

    #: SEC-DED corrected the word(s); access proceeds normally.
    CORRECTED = "corrected"
    #: 3+ flipped bits aliased to a valid-looking correction: silent
    #: data corruption.  The cache cannot see this (it proceeds as if
    #: corrected); the injector's oracle counts it.
    MISCORRECTED = "miscorrected"
    #: Detected-uncorrectable on a *clean* line: drop the line and
    #: refetch from below (the access becomes a miss).
    REFETCH = "refetch"
    #: Detected-uncorrectable on a *dirty* line: only copy lost; the
    #: injector raises :class:`repro.common.errors.UncorrectableDataError`.
    DATA_LOSS = "data-loss"


@dataclass(frozen=True)
class HardFaultEvent:
    """One scheduled stuck-at subarray failure.

    Fires once the cache has served ``at_access`` accesses.  ``dgroup``
    selects the repair domain (d-group for NuRAPID; conventional caches
    treat the whole array as domain 0) and ``subarray`` the failing
    data subarray within it.
    """

    at_access: int
    dgroup: int
    subarray: int

    def __post_init__(self) -> None:
        if self.at_access <= 0:
            raise ConfigurationError("hard fault must fire at a positive access count")
        if self.dgroup < 0 or self.subarray < 0:
            raise ConfigurationError("hard fault coordinates must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault campaign for one cache.

    ``transient_per_access`` is the probability that any given access
    observes an upset on the line it touches (the standard access-based
    sampling approximation: errors on never-again-touched lines are
    architecturally invisible).  Use :func:`transient_rate_from_fit` to
    derive it from a FIT rate.  ``transient_at_accesses`` additionally
    forces an upset at exact access counts — deterministic scheduling
    for tests and targeted studies.

    ``max_upset_bits`` bounds the width (in adjacent cells of one
    subarray) of a strike; widths are drawn uniformly in
    ``[1, max_upset_bits]``.  ``interleave_subarrays`` is how many
    subarrays each block's ECC words spread over — the §3.1 layout knob
    that separates NuRAPID's large d-groups from narrow banked layouts.

    ``hard_faults`` schedules stuck-at subarray failures; each d-group
    is a repair domain of ``data_subarrays_per_dgroup`` subarrays
    backed by ``spare_subarrays_per_dgroup`` spares.
    """

    transient_per_access: float = 0.0
    transient_at_accesses: Tuple[int, ...] = ()
    max_upset_bits: int = 1
    word_bits: int = 64
    words_per_block: int = 16
    interleave_subarrays: int = 64
    hard_faults: Tuple[HardFaultEvent, ...] = ()
    data_subarrays_per_dgroup: int = 64
    spare_subarrays_per_dgroup: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_per_access <= 1.0:
            raise ConfigurationError("transient_per_access must be in [0, 1]")
        if any(a <= 0 for a in self.transient_at_accesses):
            raise ConfigurationError("forced upsets need positive access counts")
        if self.max_upset_bits <= 0:
            raise ConfigurationError("max_upset_bits must be positive")
        if self.word_bits <= 0 or self.words_per_block <= 0:
            raise ConfigurationError("ECC word geometry must be positive")
        if self.interleave_subarrays <= 0:
            raise ConfigurationError("interleave_subarrays must be positive")
        if self.data_subarrays_per_dgroup <= 0:
            raise ConfigurationError("data_subarrays_per_dgroup must be positive")
        if self.spare_subarrays_per_dgroup < 0:
            raise ConfigurationError("spare_subarrays_per_dgroup must be non-negative")

    @property
    def any_transients(self) -> bool:
        return self.transient_per_access > 0.0 or bool(self.transient_at_accesses)

    def label(self) -> str:
        """Compact suffix for config names (cache keys must see faults)."""
        parts = []
        if self.transient_per_access:
            parts.append(f"t{self.transient_per_access:g}")
        if self.transient_at_accesses:
            parts.append(f"t@{len(self.transient_at_accesses)}")
        if self.hard_faults:
            parts.append(f"h{len(self.hard_faults)}")
        parts.append(f"s{self.seed}")
        return "flt-" + "-".join(parts)


def transient_rate_from_fit(
    fit_per_mbit: float,
    capacity_bits: int,
    accesses_per_second: float,
) -> float:
    """Per-access upset probability equivalent to a FIT rate.

    FIT is failures per 10^9 device-hours per Mbit — the unit SRAM
    soft-error rates are quoted in.  The whole array's upset rate is
    spread over the access stream: with ``accesses_per_second`` demand
    accesses, each access samples ``rate / accesses_per_second`` of the
    exposure window.
    """
    if fit_per_mbit < 0:
        raise ConfigurationError("FIT rate must be non-negative")
    if capacity_bits <= 0:
        raise ConfigurationError("capacity must be positive")
    if accesses_per_second <= 0:
        raise ConfigurationError("access rate must be positive")
    upsets_per_second = (
        fit_per_mbit * (capacity_bits / 1e6) / (_FIT_HOURS * _SECONDS_PER_HOUR)
    )
    rate = upsets_per_second / accesses_per_second
    return min(1.0, rate)

"""Runtime fault injection against a live cache.

A :class:`FaultInjector` is attached to one cache instance (its own
RNG stream, its own spare pool) and consulted from the cache's access
path.  The contract with the host cache:

* every access calls :meth:`on_access`; the injector ticks its access
  counter and, for hits, may return a
  :class:`~repro.faults.models.TransientOutcome` the cache must act on
  (``REFETCH`` → drop the clean line and treat the access as a miss) or
  raises :class:`~repro.common.errors.UncorrectableDataError` for a
  dirty-line uncorrectable;
* every access then calls :meth:`take_due_hard_faults` and applies the
  returned :class:`~repro.faults.models.HardFaultEvent`s — consulting
  :meth:`repair_or_retire` which runs the spare-remap-or-retire
  decision through the :class:`~repro.floorplan.spares.SpareManager`.

Upsets flow through the *actual* SEC-DED machinery in
:mod:`repro.tech.ecc`: the injector encodes a random data word, flips
the drawn number of bits, and decodes — so corrected / detected /
aliased-miscorrected outcomes come from the code, not from a table.

The injector is pure overhead-free opt-in: a cache with no injector
attached executes exactly its pre-fault code path (no RNG draws, no
branches taken), keeping no-fault results bit-identical.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigurationError, UncorrectableDataError
from repro.common.rng import DeterministicRNG
from repro.common.stats import Counter
from repro.floorplan.spares import SpareManager
from repro.tech.ecc import DecodeStatus, InterleavingPlan, SECDED
from repro.faults.models import FaultPlan, HardFaultEvent, TransientOutcome


class FaultInjector:
    """Executes one :class:`FaultPlan` against one cache."""

    def __init__(self, plan: FaultPlan, cache_name: str, n_dgroups: int = 1) -> None:
        if n_dgroups <= 0:
            raise ConfigurationError("injector needs at least one d-group")
        for event in plan.hard_faults:
            if event.dgroup >= n_dgroups:
                raise ConfigurationError(
                    f"hard fault targets d-group {event.dgroup} but the cache "
                    f"has {n_dgroups}"
                )
            if event.subarray >= plan.data_subarrays_per_dgroup:
                raise ConfigurationError(
                    f"hard fault targets subarray {event.subarray} but domains "
                    f"have {plan.data_subarrays_per_dgroup}"
                )
        self.plan = plan
        self.cache_name = cache_name
        self.rng = DeterministicRNG(plan.seed, f"{cache_name}/faults")
        self.stats = Counter()
        self._code = SECDED(plan.word_bits)
        self._interleave = InterleavingPlan(
            words=plan.words_per_block,
            word_bits=self._code.codeword_bits,
            subarrays=plan.interleave_subarrays,
        )
        self._accesses = 0
        self._forced = set(plan.transient_at_accesses)
        #: Unfired hard faults, soonest last (so pops are O(1)).
        self._hard_pending: List[HardFaultEvent] = sorted(
            plan.hard_faults, key=lambda e: e.at_access, reverse=True
        )
        self.spares = SpareManager()
        for group in range(n_dgroups):
            self.spares.add_domain(
                f"{cache_name}/dg{group}",
                plan.data_subarrays_per_dgroup,
                plan.spare_subarrays_per_dgroup,
            )

    @property
    def accesses_seen(self) -> int:
        return self._accesses

    # --- transient upsets ---

    def on_access(
        self, hit: bool, dirty: bool, address: int = 0
    ) -> Optional[TransientOutcome]:
        """Tick the access counter; maybe upset the line a hit touched."""
        self._accesses += 1
        if not hit:
            return None
        struck = self._accesses in self._forced
        if not struck and self.plan.transient_per_access > 0.0:
            struck = self.rng.random() < self.plan.transient_per_access
        if not struck:
            return None
        return self._upset(dirty, address)

    def _upset(self, dirty: bool, address: int) -> TransientOutcome:
        self.stats.add("upsets")
        width = (
            1
            if self.plan.max_upset_bits == 1
            else self.rng.randint(1, self.plan.max_upset_bits)
        )
        # An adjacent run of `width` cells in ONE subarray revisits a
        # word every `words` cells, but can never flip more bits of a
        # word than that word stores in the subarray (§3.1).
        per_word = -(-width // self._interleave.words)  # ceil
        flips = min(per_word, self._interleave.bits_per_word_per_subarray())
        data = self.rng.randint(0, (1 << self.plan.word_bits) - 1)
        word = self._code.encode(data)
        positions = list(range(self._code.codeword_bits))
        self.rng.shuffle(positions)
        for bit in positions[:flips]:
            word ^= 1 << bit
        decoded = self._code.decode(word)

        if decoded.status is DecodeStatus.CORRECTED:
            if decoded.data == data:
                self.stats.add("corrected")
                return TransientOutcome.CORRECTED
            # 3+ flips aliased to a plausible single-bit correction:
            # only the oracle (who knows `data`) can tell.
            self.stats.add("miscorrected")
            return TransientOutcome.MISCORRECTED
        if decoded.status is DecodeStatus.CLEAN:
            # Flips cancelled back to a valid codeword (possible at 4+
            # flips): silent corruption, same oracle bookkeeping.
            self.stats.add("miscorrected")
            return TransientOutcome.MISCORRECTED
        # DETECTED_UNCORRECTABLE.
        self.stats.add("detected_uncorrectable")
        if dirty:
            self.stats.add("dirty_data_loss")
            raise UncorrectableDataError(self.cache_name, address, self._accesses)
        self.stats.add("clean_refetches")
        return TransientOutcome.REFETCH

    # --- hard subarray failures ---

    def take_due_hard_faults(self) -> List[HardFaultEvent]:
        """Pop (in firing order) every hard fault now due."""
        due: List[HardFaultEvent] = []
        while self._hard_pending and self._hard_pending[-1].at_access <= self._accesses:
            due.append(self._hard_pending.pop())
        return due

    def repair_or_retire(self, event: HardFaultEvent) -> bool:
        """Run the spare decision for one failure; True if remapped."""
        domain = self.spares.domain(f"{self.cache_name}/dg{event.dgroup}")
        repaired = domain.fail_subarray(event.subarray)
        if repaired:
            self.stats.add("hard_faults_repaired")
        else:
            self.stats.add("hard_faults_unrepaired")
        return repaired

    # --- reporting ---

    def summary(self) -> dict:
        out = {f"fault_{k}": v for k, v in self.stats.as_dict().items()}
        out["fault_accesses_observed"] = float(self._accesses)
        return out

"""Runtime fault injection and graceful degradation.

The paper's §3 layout arguments — wide ECC interleaving absorbs soft
errors, shared spares absorb hard errors — are reproduced *offline* by
:mod:`repro.tech.ecc` and :mod:`repro.floorplan.spares`.  This package
makes them *runtime* effects: a :class:`FaultPlan` describes a fault
campaign, a :class:`FaultInjector` executes it against a live cache,
and the cache substrates degrade gracefully — SEC-DED correction,
clean-line refetch, spare-subarray remap, and d-group frame retirement
— instead of crashing.

Attach a plan via :class:`repro.sim.config.SystemConfig`'s ``faults``
field (the driver wires injectors into the lower-level caches), or
call ``attach_faults`` on a cache directly.  With no plan attached the
fault hooks are never entered and results are bit-identical to the
pre-fault simulator.
"""

from repro.common.errors import FaultError, UncorrectableDataError
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    FaultPlan,
    HardFaultEvent,
    TransientOutcome,
    transient_rate_from_fit,
)

__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "HardFaultEvent",
    "TransientOutcome",
    "UncorrectableDataError",
    "transient_rate_from_fit",
]

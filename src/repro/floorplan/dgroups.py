"""Latency/energy geometry consumed by the cache models.

This module fuses the mini-Cacti array models with the floorplans to
produce the numbers the paper's Tables 2 and 4 report:

* :func:`build_nurapid_geometry` — a :class:`NuRAPIDGeometry` with the
  centralized tag array's latency, each d-group's data-side latency
  (array + routing around closer d-groups), and the per-operation
  energies including forward/reverse pointer overhead.
* :func:`build_dnuca_geometry` — a :class:`DNUCAGeometry` with per-bank
  latencies over the switched network, bank probe/read energies, and
  the smart-search array model.
* :func:`build_uniform_cache_spec` — conventional caches (the base
  L2/L3 hierarchy and the L1s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.floorplan.layout import DNUCAFloorplan, NuRAPIDFloorplan
from repro.tech.cacti import MiniCacti
from repro.tech.params import TECH_70NM, TechnologyParams
from repro.tech.wires import WireModel

#: Architected physical address width (the paper quotes 51-bit tag
#: entries for a 64-bit-address 8 MB cache, i.e. tag + state bits).
ADDRESS_BITS = 64
#: Valid/dirty/coherence state per tag entry.
STATE_BITS = 3
#: Pointer + control bits accompanying an address to a d-group.
DGROUP_REQUEST_BITS = 24

#: Calibration: cycles of request sequencing / core-to-tag routing not
#: captured by the raw tag-array circuit model.  Chosen so the 8 MB
#: 8-way NuRAPID tag comes out at the paper's 8 cycles (§5.1).
TAG_SEQUENCING_CYCLES = 4


def _log2_int(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class DGroupSpec:
    """One NuRAPID d-group, placed and characterized.

    ``data_cycles`` covers the d-group array access plus round-trip
    routing between the core and the d-group; the total hit latency is
    ``tag_cycles + data_cycles`` (sequential tag-data access).
    """

    index: int
    capacity_bytes: int
    n_frames: int
    route_mm: float
    data_cycles: int
    #: Full read as seen by the core: array + routing both ways (nJ).
    read_energy_nj: float
    write_energy_nj: float
    #: Array-only energies, used to compose swap costs.
    array_read_nj: float
    array_write_nj: float
    array_cycles: int


@dataclass(frozen=True)
class NuRAPIDGeometry:
    """Everything the NuRAPID cache model needs from the physical design."""

    tech: TechnologyParams
    capacity_bytes: int
    block_bytes: int
    associativity: int
    sets: int
    dgroups: Tuple[DGroupSpec, ...]
    tag_cycles: int
    tag_energy_nj: float
    forward_pointer_bits: int
    reverse_pointer_bits: int
    wire_energy_pj_per_bit_mm: float

    @property
    def n_dgroups(self) -> int:
        return len(self.dgroups)

    @property
    def frames_per_dgroup(self) -> int:
        return self.dgroups[0].n_frames

    def hit_latency(self, dgroup: int) -> int:
        """Cycles from access start to data, hitting in ``dgroup``."""
        self._check(dgroup)
        return self.tag_cycles + self.dgroups[dgroup].data_cycles

    def miss_latency(self) -> int:
        """Cycles to determine a miss: the tag probe alone decides."""
        return self.tag_cycles

    def data_occupancy(self, dgroup: int) -> int:
        """Cycles the (one-ported) data side is busy serving a read.

        Only the array access itself occupies the port — wires are
        pipelined — and the array's subarrays are themselves
        wave-pipelined, so a new request can start once the previous
        one's decode+wordline phase completes (about half the access).
        """
        return max(2, (self.dgroups[dgroup].array_cycles + 1) // 2)

    def swap_occupancy(self, src: int, dst: int) -> int:
        """Port-busy cycles for moving one block between d-groups.

        The source read and destination write proceed through different
        subarrays and overlap; the port is held for the slower array
        plus a transfer beat, not for the sum.
        """
        self._check(src)
        self._check(dst)
        return max(self.dgroups[src].array_cycles, self.dgroups[dst].array_cycles) + 1

    def swap_energy_nj(self, src: int, dst: int) -> float:
        """Read at src, route between the groups, write at dst."""
        self._check(src)
        self._check(dst)
        distance = abs(self.dgroups[src].route_mm - self.dgroups[dst].route_mm)
        payload_bits = self.block_bytes * 8 + self.reverse_pointer_bits
        wire_nj = distance * payload_bits * self.wire_energy_pj_per_bit_mm / 1000.0
        return self.dgroups[src].array_read_nj + self.dgroups[dst].array_write_nj + wire_nj

    def pointer_overhead_bits(self) -> int:
        """Total storage spent on forward + reverse pointers (§2.4.3)."""
        blocks = self.capacity_bytes // self.block_bytes
        return blocks * (self.forward_pointer_bits + self.reverse_pointer_bits)

    def table4_column(self) -> List[int]:
        """Total hit latency of each megabyte, fastest to slowest."""
        mb = 1024 * 1024
        per_dgroup_mb = self.dgroups[0].capacity_bytes // mb
        column = []
        for spec in self.dgroups:
            column.extend([self.tag_cycles + spec.data_cycles] * max(1, per_dgroup_mb))
        # Sub-megabyte d-groups (not used by the paper) would collapse
        # rows; guard so the column always covers the full capacity.
        total_mb = self.capacity_bytes // mb
        return column[:total_mb] if per_dgroup_mb else column

    def _check(self, dgroup: int) -> None:
        if not 0 <= dgroup < self.n_dgroups:
            raise ConfigurationError(f"d-group {dgroup} out of range")


def build_nurapid_geometry(
    n_dgroups: int = 4,
    capacity_bytes: int = 8 * 1024 * 1024,
    block_bytes: int = 128,
    associativity: int = 8,
    tech: TechnologyParams = TECH_70NM,
    restricted_frames: Optional[int] = None,
    arm_width_mm: float = 4.0,
    detour_factor: float = 1.6,
) -> NuRAPIDGeometry:
    """Characterize a NuRAPID design point.

    ``restricted_frames`` enables §2.4.3's pointer-size optimization:
    each block may be placed in only that many frames per d-group,
    shrinking the forward pointer (placement restriction is enforced by
    the cache model, the geometry only sizes the pointers).
    """
    if n_dgroups <= 0:
        raise ConfigurationError("need at least one d-group")
    if capacity_bytes % (n_dgroups * block_bytes):
        raise ConfigurationError("capacity must divide evenly into d-groups of blocks")
    blocks = capacity_bytes // block_bytes
    sets = blocks // associativity
    _log2_int(sets, "number of sets")
    frames_per_dgroup = blocks // n_dgroups

    if restricted_frames is None:
        frame_choice = frames_per_dgroup
    else:
        if restricted_frames <= 0 or restricted_frames > frames_per_dgroup:
            raise ConfigurationError(
                f"restricted_frames must be in [1, {frames_per_dgroup}]"
            )
        frame_choice = restricted_frames
    forward_bits = _log2_int(n_dgroups, "n_dgroups") + max(
        1, math.ceil(math.log2(frame_choice))
    )
    reverse_bits = _log2_int(sets, "sets") + _log2_int(associativity, "associativity")

    cacti = MiniCacti(tech)
    wires = WireModel(tech)

    tag_bits = ADDRESS_BITS - _log2_int(sets, "sets") - _log2_int(block_bytes, "block")
    entry_bits = tag_bits + STATE_BITS + forward_bits
    tag_model = cacti.tag_array(sets, associativity, entry_bits, name="nurapid-tag")
    tag_cycles = tag_model.access_cycles + TAG_SEQUENCING_CYCLES

    dgroup_capacity = capacity_bytes // n_dgroups
    data_model = cacti.data_array(
        dgroup_capacity, block_bytes, name="dgroup", extra_bits_per_block=reverse_bits
    )
    floorplan = NuRAPIDFloorplan(
        [data_model.area_mm2] * n_dgroups,
        arm_width_mm=arm_width_mm,
        detour_factor=detour_factor,
    )

    payload_bits = block_bytes * 8 + reverse_bits
    specs = []
    for placed in floorplan.placed:
        route = placed.route_mm
        route_ps = wires.round_trip_ps(route)
        data_cycles = tech.ps_to_cycles(data_model.access_time_ps + route_ps)
        wire_nj = (
            wires.energy_pj(route, DGROUP_REQUEST_BITS)
            + wires.energy_pj(route, payload_bits)
        ) / 1000.0
        specs.append(
            DGroupSpec(
                index=placed.index,
                capacity_bytes=dgroup_capacity,
                n_frames=frames_per_dgroup,
                route_mm=route,
                data_cycles=data_cycles,
                read_energy_nj=data_model.read_energy_nj + wire_nj,
                write_energy_nj=data_model.write_energy_pj() / 1000.0 + wire_nj,
                array_read_nj=data_model.read_energy_nj,
                array_write_nj=data_model.write_energy_pj() / 1000.0,
                array_cycles=data_model.access_cycles,
            )
        )

    return NuRAPIDGeometry(
        tech=tech,
        capacity_bytes=capacity_bytes,
        block_bytes=block_bytes,
        associativity=associativity,
        sets=sets,
        dgroups=tuple(specs),
        tag_cycles=tag_cycles,
        tag_energy_nj=tag_model.read_energy_nj,
        forward_pointer_bits=forward_bits,
        reverse_pointer_bits=reverse_bits,
        wire_energy_pj_per_bit_mm=tech.wire_energy_pj_per_bit_mm,
    )


@dataclass(frozen=True)
class BankSpec:
    """One D-NUCA bank: grid position, latency, and energies."""

    index: int
    row: int
    col: int
    hops: int
    #: Round-trip hit latency: network there and back plus bank access.
    latency_cycles: int
    #: Tag-only probe (search step that misses in this bank), nJ.
    probe_energy_nj: float
    #: Full hit: probe + data read + block routed back, nJ.
    read_energy_nj: float
    write_energy_nj: float
    #: Moving a block one hop toward the core (a swap leg), nJ.
    swap_energy_nj: float
    occupancy_cycles: int


@dataclass(frozen=True)
class DNUCAGeometry:
    """Everything the D-NUCA cache model needs from the physical design."""

    tech: TechnologyParams
    capacity_bytes: int
    block_bytes: int
    associativity: int
    sets: int
    rows: int
    cols: int
    banks: Tuple[BankSpec, ...]
    chain_length: int
    ways_per_bank: int
    ss_latency_cycles: int
    ss_energy_nj: float
    ss_partial_bits: int

    @property
    def n_banks(self) -> int:
        return len(self.banks)

    @property
    def n_chains(self) -> int:
        return self.cols

    def chain_bank(self, chain: int, level: int) -> BankSpec:
        """Bank at depth ``level`` (0 = closest) of a bank-set chain.

        A chain is a column of the grid: level 0 is the row nearest the
        core, so bubble promotion moves blocks down the column.
        """
        if not 0 <= chain < self.cols:
            raise ConfigurationError(f"chain {chain} out of range")
        if not 0 <= level < self.chain_length:
            raise ConfigurationError(f"level {level} out of range")
        return self.banks[level * self.cols + chain]

    def table4_column(self) -> List[Tuple[int, int, float]]:
        """(min, max, mean) latency per megabyte, fastest banks first."""
        mb_banks = (1024 * 1024) // (self.capacity_bytes // self.n_banks)
        ordered = sorted(self.banks, key=lambda b: (b.latency_cycles, b.index))
        column = []
        for start in range(0, self.n_banks, mb_banks):
            chunk = ordered[start : start + mb_banks]
            lats = [b.latency_cycles for b in chunk]
            column.append((min(lats), max(lats), sum(lats) / len(lats)))
        return column


def build_dnuca_geometry(
    capacity_bytes: int = 8 * 1024 * 1024,
    block_bytes: int = 128,
    associativity: int = 16,
    bank_bytes: int = 64 * 1024,
    chain_length: int = 8,
    tech: TechnologyParams = TECH_70NM,
    router_cycles_per_hop: float = 0.7,
    ss_partial_bits: int = 7,
    ss_energy_factor: float = 10.0,
) -> DNUCAGeometry:
    """Characterize the paper's D-NUCA baseline.

    Defaults follow §4: 8 MB, 16-way, 128 x 64 KB banks, 8 d-groups per
    set (so each of the 16 chain columns holds 8 banks of 2 ways each),
    and a 7-bit-per-entry smart-search array.
    """
    if capacity_bytes % bank_bytes:
        raise ConfigurationError("capacity must be a whole number of banks")
    n_banks = capacity_bytes // bank_bytes
    if n_banks % chain_length:
        raise ConfigurationError("banks must divide evenly into chains")
    cols = n_banks // chain_length
    rows = chain_length
    ways_per_bank = associativity // chain_length
    if ways_per_bank * chain_length != associativity:
        raise ConfigurationError("associativity must divide evenly across the chain")
    blocks = capacity_bytes // block_bytes
    sets = blocks // associativity

    cacti = MiniCacti(tech)
    # Bank data side plus the bank's local tag slice; D-NUCA accesses
    # tag and data in parallel within a bank (§5.1).
    bank_sets = bank_bytes // block_bytes // ways_per_bank
    tag_bits = ADDRESS_BITS - max(1, math.ceil(math.log2(sets))) - _log2_int(
        block_bytes, "block"
    ) + STATE_BITS
    bank_data = cacti.data_array(bank_bytes, block_bytes, name="nuca-bank")
    bank_tag = cacti.tag_array(bank_sets, ways_per_bank, tag_bits, name="nuca-bank-tag")

    floorplan = DNUCAFloorplan(
        rows=rows,
        cols=cols,
        bank_width_mm=math.sqrt(bank_data.area_mm2 + bank_tag.area_mm2),
        bank_height_mm=math.sqrt(bank_data.area_mm2 + bank_tag.area_mm2),
        tech=tech,
        router_cycles_per_hop=router_cycles_per_hop,
    )

    bank_access_cycles = max(bank_data.access_cycles, bank_tag.access_cycles)
    block_bits = block_bytes * 8
    address_hop_nj = floorplan.hop_energy_nj(ADDRESS_BITS)
    data_hop_nj = floorplan.hop_energy_nj(block_bits)

    banks = []
    for index in range(n_banks):
        row, col = floorplan.bank_position(index)
        hops = floorplan.hops(index)
        latency = bank_access_cycles + floorplan.network_cycles(index)
        probe = bank_tag.read_energy_nj + hops * address_hop_nj
        read = probe + bank_data.read_energy_nj + hops * data_hop_nj
        write = probe + bank_data.write_energy_pj() / 1000.0 + hops * data_hop_nj
        swap = (
            bank_data.read_energy_nj
            + bank_data.write_energy_pj() / 1000.0
            + data_hop_nj
        )
        banks.append(
            BankSpec(
                index=index,
                row=row,
                col=col,
                hops=hops,
                latency_cycles=latency,
                probe_energy_nj=probe,
                read_energy_nj=read,
                write_energy_nj=write,
                swap_energy_nj=swap,
                # Small banks are internally pipelined: a new request
                # can enter every cycle or two even though the access
                # itself takes bank_access_cycles.
                occupancy_cycles=max(1, bank_access_cycles // 2),
            )
        )

    # Smart-search array: ss_partial_bits per way, all ways of a set
    # read per probe.  The paper grants it infinite bandwidth, i.e. an
    # aggressively multiported implementation whose port replication
    # multiplies access energy (ss_energy_factor calibrates to the
    # paper's 0.19 nJ).
    ss_model = cacti.tag_array(sets, associativity, ss_partial_bits, name="ss-array")

    return DNUCAGeometry(
        tech=tech,
        capacity_bytes=capacity_bytes,
        block_bytes=block_bytes,
        associativity=associativity,
        sets=sets,
        rows=rows,
        cols=cols,
        banks=tuple(banks),
        chain_length=chain_length,
        ways_per_bank=ways_per_bank,
        ss_latency_cycles=ss_model.access_cycles,
        ss_energy_nj=ss_model.read_energy_nj * ss_energy_factor,
        ss_partial_bits=ss_partial_bits,
    )


@dataclass(frozen=True)
class UniformCacheSpec:
    """A conventional uniform-access cache (base L1/L2/L3)."""

    name: str
    capacity_bytes: int
    block_bytes: int
    associativity: int
    latency_cycles: int
    read_energy_nj: float
    write_energy_nj: float
    tag_energy_nj: float


def build_uniform_cache_spec(
    name: str,
    capacity_bytes: int,
    block_bytes: int,
    associativity: int,
    latency_cycles: Optional[int] = None,
    sequential_tag_data: bool = True,
    ports: int = 1,
    tech: TechnologyParams = TECH_70NM,
    energy_factor: float = 1.0,
) -> UniformCacheSpec:
    """Characterize a conventional cache.

    ``latency_cycles`` may be pinned to the paper's quoted value (11
    for the base L2, 43 for the base L3, 3 for the L1s); energies are
    always mini-Cacti-derived.  Parallel tag-data access (L1s) reads
    all ways' data alongside the tags; sequential access (large lower-
    level caches) reads the matching way only — the paper's problem (1).
    """
    blocks = capacity_bytes // block_bytes
    sets = blocks // associativity
    tag_bits = (
        ADDRESS_BITS
        - max(1, math.ceil(math.log2(sets)))
        - _log2_int(block_bytes, "block")
        + STATE_BITS
    )
    cacti = MiniCacti(tech)
    tag = cacti.tag_array(sets, associativity, tag_bits, name=f"{name}-tag")
    data = cacti.data_array(capacity_bytes, block_bytes, name=f"{name}-data")
    if sequential_tag_data:
        read = tag.read_energy_nj + data.read_energy_nj
        latency = tag.access_cycles + data.access_cycles
    else:
        way_data = cacti.data_array(
            max(block_bytes, capacity_bytes // associativity), block_bytes
        )
        read = tag.read_energy_nj + associativity * way_data.read_energy_nj
        latency = max(tag.access_cycles, data.access_cycles)
    read *= ports * energy_factor
    write = read * 1.15
    if latency_cycles is not None:
        latency = latency_cycles
    return UniformCacheSpec(
        name=name,
        capacity_bytes=capacity_bytes,
        block_bytes=block_bytes,
        associativity=associativity,
        latency_cycles=latency,
        read_energy_nj=read,
        write_energy_nj=write,
        tag_energy_nj=tag.read_energy_nj * ports * energy_factor,
    )

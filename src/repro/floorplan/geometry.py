"""Plane geometry for floorplans.

On-chip routing follows Manhattan (rectilinear) paths, so all
distances here are L1 distances between points or rectangle centroids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Point:
    """A location on the die, in millimetres."""

    x: float
    y: float

    def manhattan_to(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)


def manhattan_distance(a: Point, b: Point) -> float:
    """Rectilinear distance between two points."""
    return a.manhattan_to(b)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: lower-left corner plus extents (mm)."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"rectangle extents must be positive, got {self.width}x{self.height}"
            )

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def centroid(self) -> Point:
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def top(self) -> float:
        return self.y + self.height

    def contains(self, p: Point) -> bool:
        return self.x <= p.x <= self.right and self.y <= p.y <= self.top

    def overlaps(self, other: "Rect") -> bool:
        """True if the interiors intersect (shared edges don't count)."""
        return not (
            self.right <= other.x
            or other.right <= self.x
            or self.top <= other.y
            or other.top <= self.y
        )

    def nearest_edge_distance(self, p: Point) -> float:
        """Manhattan distance from ``p`` to the closest point of the rect."""
        dx = max(self.x - p.x, 0.0, p.x - self.right)
        dy = max(self.y - p.y, 0.0, p.y - self.top)
        return dx + dy

"""Floorplanning: where arrays sit and how far signals travel.

The paper's central physical argument (§3) is that access latency of
distant subarrays is dominated by wire, so *where* a d-group or bank
sits on the die determines its latency and routing energy.  This
package turns :mod:`repro.tech` array models into placed layouts:

* :mod:`repro.floorplan.geometry` — rectangles and Manhattan routing,
* :mod:`repro.floorplan.layout` — the L-shaped NuRAPID floorplan
  (Figure 3b) and the rectangular D-NUCA bank grid (Figure 3a),
* :mod:`repro.floorplan.dgroups` — the latency/energy tables consumed
  by the cache models (the substrate behind Tables 2 and 4).
"""

from repro.floorplan.geometry import Point, Rect, manhattan_distance
from repro.floorplan.spares import RepairDomain, SpareManager, yield_model
from repro.floorplan.layout import DNUCAFloorplan, NuRAPIDFloorplan
from repro.floorplan.dgroups import (
    BankSpec,
    DGroupSpec,
    DNUCAGeometry,
    NuRAPIDGeometry,
    build_dnuca_geometry,
    build_nurapid_geometry,
)

__all__ = [
    "BankSpec",
    "RepairDomain",
    "SpareManager",
    "yield_model",
    "DGroupSpec",
    "DNUCAFloorplan",
    "DNUCAGeometry",
    "NuRAPIDFloorplan",
    "NuRAPIDGeometry",
    "Point",
    "Rect",
    "build_dnuca_geometry",
    "build_nurapid_geometry",
    "manhattan_distance",
]

"""Placed floorplans for the two non-uniform organizations.

*NuRAPID* (paper Figure 3b): the processor core sits in the corner of
an L-shaped region; a few large d-groups are laid out along the L in
order of latency.  Routing to d-group *i* must go around d-groups
0..i-1, so distance accumulates along the chain.

*D-NUCA* (paper Figure 3a): 128 small 64 KB banks in a rectangular
grid in front of the core, connected by a switched network; latency
grows with hop count.

Both floorplans are parameterized by calibration constants (arm width,
detour factor, router delay) chosen so derived latencies land near the
paper's Table 4; see ``tests/test_floorplan.py`` for the bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.floorplan.geometry import Rect
from repro.tech.params import TECH_70NM, TechnologyParams
from repro.tech.wires import WireModel


@dataclass
class PlacedArray:
    """One array (d-group or bank) with its position and route length."""

    index: int
    rect: Rect
    #: One-way routed distance from the core's cache port to this
    #: array's *near edge*, in mm (already includes any detour).  The
    #: array's internal H-tree distribution is part of the array model,
    #: so measuring to the edge avoids double-counting.
    route_mm: float


class NuRAPIDFloorplan:
    """L-shaped chain placement of d-groups around the core.

    D-groups are modeled as strips of ``arm_width_mm`` depth laid along
    the L; the route to d-group *i* runs past all closer d-groups.  The
    ``detour_factor`` accounts for rectilinear routing not following
    the straight chain (channel jogs, bends at the L's corner).
    """

    def __init__(
        self,
        dgroup_areas_mm2: Sequence[float],
        arm_width_mm: float = 4.0,
        detour_factor: float = 1.6,
        core_offset_mm: float = 0.3,
    ) -> None:
        if not dgroup_areas_mm2:
            raise ConfigurationError("at least one d-group required")
        if any(a <= 0 for a in dgroup_areas_mm2):
            raise ConfigurationError("d-group areas must be positive")
        if arm_width_mm <= 0 or detour_factor < 1.0 or core_offset_mm < 0:
            raise ConfigurationError("invalid floorplan calibration constants")
        self.arm_width_mm = arm_width_mm
        self.detour_factor = detour_factor
        self.core_offset_mm = core_offset_mm
        self.placed = self._place(list(dgroup_areas_mm2))

    def _place(self, areas: List[float]) -> List[PlacedArray]:
        spans = [area / self.arm_width_mm for area in areas]
        # The L bends once; give the first leg half the total chain
        # length so the shape is a genuine L rather than a bar.
        total_span = sum(spans)
        first_leg = total_span / 2.0
        placed: List[PlacedArray] = []
        chain_pos = 0.0
        for index, span in enumerate(spans):
            route = (self.core_offset_mm + chain_pos) * self.detour_factor
            rect = self._chain_rect(chain_pos, span, first_leg)
            placed.append(PlacedArray(index=index, rect=rect, route_mm=route))
            chain_pos += span
        return placed

    def _chain_rect(self, start: float, span: float, first_leg: float) -> Rect:
        """Map a chain interval to a rectangle on one of the L's legs.

        A strip straddling the bend is drawn on the first leg (the
        route distance, which is what matters, uses chain position).
        """
        w = self.arm_width_mm
        if start < first_leg:
            return Rect(x=start, y=0.0, width=span, height=w)
        return Rect(x=first_leg, y=w + (start - first_leg), width=w, height=span)

    @property
    def route_distances_mm(self) -> List[float]:
        return [p.route_mm for p in self.placed]

    def swap_distance_mm(self, i: int, j: int) -> float:
        """Routed distance for moving a block between d-groups i and j."""
        if not (0 <= i < len(self.placed) and 0 <= j < len(self.placed)):
            raise ConfigurationError(f"d-group index out of range: {i}, {j}")
        return abs(self.placed[i].route_mm - self.placed[j].route_mm)

    @property
    def total_area_mm2(self) -> float:
        return sum(p.rect.area for p in self.placed)


class DNUCAFloorplan:
    """Rectangular grid of identical banks in front of the core.

    The core sits centered below row 0.  A request to bank (row, col)
    travels ``row + 1`` vertical hops plus the horizontal offset from
    the center column; each hop crosses one bank pitch of wire and one
    network switch.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        bank_width_mm: float,
        bank_height_mm: float,
        tech: TechnologyParams = TECH_70NM,
        router_cycles_per_hop: float = 1.0,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("grid dimensions must be positive")
        if bank_width_mm <= 0 or bank_height_mm <= 0:
            raise ConfigurationError("bank dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.bank_width_mm = bank_width_mm
        self.bank_height_mm = bank_height_mm
        self.tech = tech
        self.wires = WireModel(tech)
        self.router_cycles_per_hop = router_cycles_per_hop

    @property
    def n_banks(self) -> int:
        return self.rows * self.cols

    def bank_position(self, bank: int) -> Tuple[int, int]:
        """(row, col) of a bank index, row 0 closest to the core."""
        self._check_bank(bank)
        return divmod(bank, self.cols)[0], bank % self.cols

    def hops(self, bank: int) -> int:
        """Network hops from the core's port to the bank."""
        row, col = self.bank_position(bank)
        center = (self.cols - 1) / 2.0
        return (row + 1) + int(round(abs(col - center)))

    def wire_mm(self, bank: int) -> float:
        """One-way wire length along the hop path."""
        row, col = self.bank_position(bank)
        center = (self.cols - 1) / 2.0
        return (row + 1) * self.bank_height_mm + abs(col - center) * self.bank_width_mm

    def network_cycles(self, bank: int) -> int:
        """Round-trip network latency (switches + wire) in cycles."""
        wire_ps = self.wires.round_trip_ps(self.wire_mm(bank))
        switch_ps = 2 * self.hops(bank) * self.router_cycles_per_hop * self.tech.cycle_ps
        return self.tech.ps_to_cycles(wire_ps + switch_ps)

    def hop_energy_nj(self, payload_bits: int) -> float:
        """Energy to move a payload one hop (wire only).

        The paper explicitly credits D-NUCA with zero switch energy
        ("we assume that the switched network switches consume zero
        energy", §4); we reproduce that idealization.
        """
        pitch = (self.bank_width_mm + self.bank_height_mm) / 2.0
        return self.wires.energy_pj(pitch, payload_bits) / 1000.0

    def banks_by_latency(self) -> List[int]:
        """Bank indices sorted from fastest to slowest."""
        return sorted(range(self.n_banks), key=lambda b: (self.network_cycles(b), b))

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.n_banks:
            raise ConfigurationError(
                f"bank {bank} out of range for {self.rows}x{self.cols} grid"
            )

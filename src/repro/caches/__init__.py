"""Cache substrates: everything below the paper's contribution.

* :mod:`repro.caches.block` — cache-block bookkeeping.
* :mod:`repro.caches.port` — busy-time port/bank scheduling (the
  one-ported NuRAPID vs multi-banked D-NUCA contrast lives here).
* :mod:`repro.caches.mshr` — miss-status holding registers.
* :mod:`repro.caches.simple` — conventional set-associative caches
  (the L1s and the base L2/L3 hierarchy).
* :mod:`repro.caches.memory` — main-memory latency model.
* :mod:`repro.caches.hierarchy` — multi-level composition.
* :mod:`repro.caches.setassoc_nonuniform` — the *coupled* tag/data
  placement non-uniform cache the paper contrasts against in Figure 4.
"""

from repro.caches.block import CacheBlock
from repro.caches.prefetch import PrefetchingHierarchyAdapter, StreamPrefetcher
from repro.caches.port import PortScheduler
from repro.caches.mshr import MSHRFile
from repro.caches.memory import MainMemory
from repro.caches.simple import SetAssociativeCache
from repro.caches.hierarchy import CacheHierarchy
from repro.caches.setassoc_nonuniform import SetAssociativePlacementCache

__all__ = [
    "CacheBlock",
    "PrefetchingHierarchyAdapter",
    "StreamPrefetcher",
    "CacheHierarchy",
    "MSHRFile",
    "MainMemory",
    "PortScheduler",
    "SetAssociativeCache",
    "SetAssociativePlacementCache",
]

"""Stream prefetching between the L1 and the L2 (extension).

The paper's workloads carry substantial streaming traffic, and its
future-work direction of combining NuRAPID with latency-hiding
techniques invites a concrete experiment: a classic multi-stream
next-N-line prefetcher that watches the L1-miss stream, detects
ascending/descending unit-block strides, and issues prefetch fills
into the L2.

Prefetches are *not* demand accesses: they charge L2 fill energy and
placement work (a prefetched block enters d-group 0 like any fill —
flexible placement applies to prefetches for free) but never stall the
core.  Accuracy/coverage accounting lets the ``ablation_prefetch``
experiment report the usual prefetcher metrics next to the IPC effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.caches.block import block_address


@dataclass
class StreamEntry:
    """One tracked stream: last block seen and its direction."""

    last_block: int
    direction: int  # +1 ascending, -1 descending, 0 untrained
    confidence: int = 0
    last_used: int = 0


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0
    evicted_unused: int = 0
    streams_allocated: int = 0

    @property
    def accuracy(self) -> float:
        if not self.issued:
            return 0.0
        return self.useful / self.issued


class StreamPrefetcher:
    """Multi-stream next-N-line prefetcher over the L1-miss stream.

    ``degree`` blocks are prefetched ahead once a stream reaches
    ``train_threshold`` consecutive same-direction misses.  Streams are
    tracked per 4 KB region with LRU reuse of the table entries, the
    standard tabular design of the era.
    """

    REGION_BYTES = 4096

    def __init__(
        self,
        block_bytes: int = 128,
        streams: int = 8,
        degree: int = 2,
        train_threshold: int = 2,
    ) -> None:
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigurationError("block size must be a power of two")
        if streams <= 0 or degree <= 0 or train_threshold <= 0:
            raise ConfigurationError("prefetcher parameters must be positive")
        self.block_bytes = block_bytes
        self.max_streams = streams
        self.degree = degree
        self.train_threshold = train_threshold
        self._table: Dict[int, StreamEntry] = {}
        self._clock = 0
        self.stats = PrefetchStats()
        #: Prefetched blocks not yet re-used (for accuracy accounting).
        self._outstanding: Dict[int, bool] = {}

    def _region_of(self, address: int) -> int:
        return address // self.REGION_BYTES

    def _evict_stream_if_full(self) -> None:
        if len(self._table) < self.max_streams:
            return
        victim = min(self._table, key=lambda r: self._table[r].last_used)
        del self._table[victim]

    def observe_miss(self, address: int) -> List[int]:
        """Train on one L1-miss address; returns block addresses to prefetch."""
        self._clock += 1
        block = block_address(address, self.block_bytes)
        region = self._region_of(address)
        entry = self._table.get(region)
        if entry is None:
            self._evict_stream_if_full()
            self._table[region] = StreamEntry(
                last_block=block, direction=0, last_used=self._clock
            )
            self.stats.streams_allocated += 1
            return []

        entry.last_used = self._clock
        delta = block - entry.last_block
        step = self.block_bytes
        if delta == step or delta == -step:
            direction = 1 if delta > 0 else -1
            if direction == entry.direction:
                entry.confidence += 1
            else:
                entry.direction = direction
                entry.confidence = 1
        elif delta != 0:
            entry.confidence = max(0, entry.confidence - 1)
        entry.last_block = block

        if entry.confidence < self.train_threshold:
            return []
        prefetches = [
            block + entry.direction * step * (i + 1) for i in range(self.degree)
        ]
        return [p for p in prefetches if p >= 0]

    def note_issued(self, block: int) -> None:
        """Record that a prefetch fill was actually sent to the L2."""
        self.stats.issued += 1
        self._outstanding[block] = True

    def note_demand(self, address: int) -> None:
        """A demand access touched ``address``; credit a useful prefetch."""
        block = block_address(address, self.block_bytes)
        if self._outstanding.pop(block, False):
            self.stats.useful += 1

    def outstanding(self) -> int:
        return len(self._outstanding)


class PrefetchingHierarchyAdapter:
    """Wraps a hierarchy's data-access path with a stream prefetcher.

    Demand accesses flow through unchanged; on every L1 miss the
    prefetcher may issue fills into the first lower level.  Prefetch
    fills charge that cache's energy/placement machinery but add no
    latency to the triggering access.
    """

    def __init__(self, hierarchy, prefetcher: Optional[StreamPrefetcher] = None) -> None:
        self.hierarchy = hierarchy
        first_lower = hierarchy.lower[0]
        block = getattr(first_lower, "block_bytes", 128)
        self.prefetcher = prefetcher if prefetcher is not None else StreamPrefetcher(
            block_bytes=block
        )
        self._lower = first_lower

    def access_data(self, address: int, is_write: bool, now: float = 0.0):
        self.prefetcher.note_demand(address)
        result = self.hierarchy.access_data(address, is_write, now)
        if result.level != self.hierarchy.l1d.name:
            for target in self.prefetcher.observe_miss(address):
                if hasattr(self._lower, "contains") and self._lower.contains(target):
                    continue
                self._lower.fill(target, now=now, dirty=False)
                self.prefetcher.note_issued(
                    block_address(target, self.prefetcher.block_bytes)
                )
        return result

    # Delegate everything else (stats, l1d, lower, ...) to the hierarchy.
    def __getattr__(self, name: str):
        return getattr(self.hierarchy, name)

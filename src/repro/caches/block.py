"""Cache-block bookkeeping shared by all cache organizations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass
class CacheBlock:
    """State for one resident cache block.

    ``block_addr`` is the block-aligned byte address (the full address
    with offset bits cleared) — keeping the whole address rather than
    a (tag, set) pair makes blocks portable across organizations with
    different indexing.
    """

    block_addr: int
    dirty: bool = False

    def __post_init__(self) -> None:
        if self.block_addr < 0:
            raise ConfigurationError("block address must be non-negative")


def block_address(address: int, block_bytes: int) -> int:
    """Align ``address`` down to its ``block_bytes`` boundary."""
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ConfigurationError(
            f"block size must be a positive power of two, got {block_bytes}"
        )
    return address & ~(block_bytes - 1)


def set_index(address: int, block_bytes: int, n_sets: int) -> int:
    """Set index of ``address`` for a cache with ``n_sets`` sets."""
    if n_sets <= 0 or n_sets & (n_sets - 1):
        raise ConfigurationError(
            f"set count must be a positive power of two, got {n_sets}"
        )
    return (address // block_bytes) & (n_sets - 1)

"""Miss-status holding registers.

The paper's system has 8 MSHRs on the L1 d-cache (Table 1).  MSHRs
bound memory-level parallelism: a primary miss allocates an entry until
its fill returns; further misses to the same block merge into the
existing entry; when all entries are full, new misses stall.

The CPU timing model uses :class:`MSHRFile` both ways: functionally
(merging secondary misses so they are not double-charged) and
temporally (an allocation failing at time *t* forces the core to wait
for the earliest outstanding fill).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.common.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Histogram


@dataclass(slots=True)
class MSHREntry:
    """One outstanding miss."""

    block_addr: int
    issued_at: float
    fill_at: float
    merged: int = 0


class MSHRFile:
    """A fixed-size file of miss-status holding registers."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ConfigurationError(f"MSHR count must be positive, got {entries}")
        self.capacity = entries
        self._entries: Dict[int, MSHREntry] = {}
        #: Earliest outstanding fill time (inf when empty); lets
        #: retire_completed return without scanning when nothing can
        #: have completed yet.
        self._min_fill = float("inf")
        self.primary_misses = 0
        self.merged_misses = 0
        self.full_stalls = 0
        #: Optional telemetry occupancy histogram; each allocation
        #: records the file's post-allocation occupancy.
        self.occupancy_hist: Optional["Histogram"] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def retire_completed(self, now: float) -> None:
        """Free every entry whose fill has returned by ``now``."""
        if now < self._min_fill:
            return
        entries = self._entries
        done = [addr for addr, e in entries.items() if e.fill_at <= now]
        for addr in done:
            del entries[addr]
        self._min_fill = min(
            (e.fill_at for e in entries.values()), default=float("inf")
        )

    def lookup(self, block_addr: int) -> Optional[MSHREntry]:
        """Outstanding entry for this block, if any."""
        return self._entries.get(block_addr)

    def merge(self, block_addr: int) -> MSHREntry:
        """Attach a secondary miss to an outstanding entry."""
        entry = self._entries.get(block_addr)
        if entry is None:
            raise SimulationError(f"merge on block {block_addr:#x} with no entry")
        entry.merged += 1
        self.merged_misses += 1
        return entry

    def earliest_fill(self) -> float:
        """Completion time of the oldest-completing outstanding miss."""
        if not self._entries:
            raise SimulationError("earliest_fill on empty MSHR file")
        return self._min_fill

    def allocate(self, block_addr: int, now: float, fill_at: float) -> MSHREntry:
        """Allocate an entry for a primary miss.

        Callers must first ``retire_completed(now)`` and check ``full``;
        allocating into a full file is a simulator bug.
        """
        if self.full:
            raise SimulationError("allocate on full MSHR file")
        if block_addr in self._entries:
            raise SimulationError(f"duplicate MSHR allocation for {block_addr:#x}")
        if fill_at < now:
            raise SimulationError("fill cannot complete before it is issued")
        entry = MSHREntry(block_addr=block_addr, issued_at=now, fill_at=fill_at)
        self._entries[block_addr] = entry
        if fill_at < self._min_fill:
            self._min_fill = fill_at
        self.primary_misses += 1
        if self.occupancy_hist is not None:
            self.occupancy_hist.record(len(self._entries))
        return entry

    def note_full_stall(self) -> None:
        self.full_stalls += 1

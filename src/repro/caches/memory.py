"""Main-memory latency model.

Table 1: "Memory latency 130 cycles + 4 cycles per 8 bytes".  A fill of
a 128 B L2 block therefore costs 130 + 4 * 16 = 194 cycles.  Off-chip
energy is outside the paper's cache-energy accounting, so memory
contributes latency and traffic counts only.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.types import AccessResult


class MainMemory:
    """Fixed-latency DRAM behind the last cache level."""

    def __init__(self, base_cycles: int = 130, cycles_per_8_bytes: int = 4) -> None:
        if base_cycles < 0 or cycles_per_8_bytes < 0:
            raise ConfigurationError("memory latencies must be non-negative")
        self.base_cycles = base_cycles
        self.cycles_per_8_bytes = cycles_per_8_bytes
        self.reads = 0
        self.writes = 0

    def transfer_cycles(self, bytes_moved: int) -> int:
        """Latency to move ``bytes_moved`` from/to DRAM."""
        if bytes_moved < 0:
            raise ConfigurationError("transfer size must be non-negative")
        beats = (bytes_moved + 7) // 8
        return self.base_cycles + beats * self.cycles_per_8_bytes

    def read(self, block_bytes: int) -> AccessResult:
        self.reads += 1
        return AccessResult(
            hit=True, latency=self.transfer_cycles(block_bytes), level="memory"
        )

    def write(self, block_bytes: int) -> None:
        """Writeback sink; off the critical path, so no latency returned."""
        if block_bytes < 0:
            raise ConfigurationError("block size must be non-negative")
        self.writes += 1

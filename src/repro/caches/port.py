"""Busy-time scheduling for cache ports and banks.

The paper's bandwidth argument (§2.3) is central: NuRAPID is one-ported
and non-banked, so "any outstanding swaps must complete before a new
access is initiated", while D-NUCA is multi-banked with an (idealized)
infinite-bandwidth switched network, so requests only ever queue on
individual banks.  Both behaviours reduce to the same primitive: a
resource that serializes occupancy intervals.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import SimulationError


class PortScheduler:
    """A single serially-reusable resource (a port or a bank).

    Time is measured in cycles and must be presented non-decreasingly
    by the caller (the simulation driver's clock); occupancy requests
    are granted at ``max(now, busy_until)``.
    """

    def __init__(self, name: str = "port") -> None:
        self.name = name
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.total_wait = 0.0
        self.grants = 0

    def request(self, now: float, duration: float) -> Tuple[float, float]:
        """Claim the resource; returns (start, finish) cycles.

        ``duration`` is how long the resource stays busy; the caller's
        observable latency may be longer (e.g. wire time after the bank
        is released) or shorter (fire-and-forget writebacks).
        """
        if duration < 0:
            raise SimulationError(f"negative occupancy {duration} on {self.name}")
        if now < 0:
            raise SimulationError(f"negative timestamp {now} on {self.name}")
        start = max(now, self.busy_until)
        finish = start + duration
        self.busy_until = finish
        self.total_busy += duration
        self.total_wait += start - now
        self.grants += 1
        return start, finish

    def wait_time(self, now: float) -> float:
        """How long a request arriving at ``now`` would wait."""
        return max(0.0, self.busy_until - now)

    def pending_depth(self, now: float, service: float) -> int:
        """Whole ``service``-cycle quanta queued ahead of ``now``.

        With fixed-duration requests this is exactly the number of
        earlier requests still unserved — the queue depth a new
        arrival observes.
        """
        wait = self.busy_until - now
        if wait <= 0 or service <= 0:
            return 0
        return int(-(-wait // service))

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` cycles this resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy / elapsed)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.total_wait = 0.0
        self.grants = 0

"""Multi-level cache hierarchy composition.

A :class:`CacheHierarchy` wires an L1 (i- and d-side) above an ordered
list of lower levels (the base L2+L3, or a single non-uniform L2) above
main memory.  Every lower level implements the same small protocol:

* ``access(address, is_write, now) -> AccessResult`` — probe; latency
  covers this level only, including any port/bank queueing.
* ``fill(address, now, dirty) -> int`` — install after a miss; returns
  the number of dirty blocks it pushed out (writeback traffic).
* ``block_bytes`` — its block size.

The hierarchy accumulates the miss path's latency, issues fills bottom
up, and routes L1 dirty evictions into the first lower level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence, runtime_checkable

from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Histogram
from repro.common.stats import Counter
from repro.common.types import Access, AccessResult, AccessType
from repro.caches.memory import MainMemory
from repro.caches.simple import SetAssociativeCache


@runtime_checkable
class LowerLevel(Protocol):
    """What the hierarchy requires of an L2/L3-like cache."""

    name: str
    block_bytes: int

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        ...

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        ...


class UniformLowerLevel:
    """Adapter giving :class:`SetAssociativeCache` the lower-level protocol."""

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.cache = cache
        self.name = cache.name
        self.block_bytes = cache.spec.block_bytes

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        return self.cache.access(address, is_write=is_write, now=now)

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        del now
        victim = self.cache.fill(address, dirty=dirty)
        return 1 if victim is not None and victim.dirty else 0


class CacheHierarchy:
    """L1s over lower levels over memory."""

    def __init__(
        self,
        l1d: SetAssociativeCache,
        lower: Sequence[LowerLevel],
        memory: MainMemory,
        l1i: Optional[SetAssociativeCache] = None,
    ) -> None:
        if not lower:
            raise ConfigurationError("hierarchy needs at least one lower level")
        self.l1d = l1d
        self.l1i = l1i if l1i is not None else l1d
        self.lower: List[LowerLevel] = list(lower)
        self.memory = memory
        self.stats = Counter()
        #: Optional telemetry histogram of end-to-end L1-miss latency.
        self.miss_latency_hist: Optional["Histogram"] = None

    def access(self, access: Access, now: float = 0.0) -> AccessResult:
        """Present one core reference; returns the end-to-end result.

        ``latency`` on the returned result is the full exposed latency
        from ``now`` until the data reaches the core — the quantity the
        CPU model turns into stall cycles.
        """
        l1 = self.l1i if access.kind is AccessType.IFETCH else self.l1d
        return self._access(l1, access.address, access.kind.is_write, now)

    def access_data(self, address: int, is_write: bool, now: float = 0.0) -> AccessResult:
        """Hot-loop entry point: a data reference without an Access object."""
        return self._access(self.l1d, address, is_write, now)

    def _access(
        self, l1: SetAssociativeCache, address: int, is_write: bool, now: float
    ) -> AccessResult:
        r1 = l1.access(address, is_write=is_write, now=now)
        total = AccessResult(
            hit=r1.hit, latency=r1.latency, level=l1.name, energy_nj=r1.energy_nj
        )
        self.stats.add("l1_accesses")
        if r1.hit:
            self.stats.add("l1_hits")
            return total

        missed: List[LowerLevel] = []
        supplied = False
        for level in self.lower:
            at = now + total.latency
            r = level.access(address, is_write=False, now=at)
            total.latency += r.latency
            total.energy_nj += r.energy_nj
            self.stats.add(f"{level.name}_accesses")
            if r.hit:
                total.level = r.level or level.name
                total.dgroup = r.dgroup
                self.stats.add(f"{level.name}_hits")
                supplied = True
                break
            missed.append(level)
        if not supplied:
            rm = self.memory.read(self.lower[-1].block_bytes)
            total.latency += rm.latency
            total.level = "memory"
            self.stats.add("memory_reads")

        # Fills, bottom-most missed level first; fill-side writebacks
        # and port occupancy are off the load's critical path.
        fill_time = now + total.latency
        for level in reversed(missed):
            dirty_out = level.fill(address, now=fill_time, dirty=False)
            for _ in range(dirty_out):
                self.memory.write(level.block_bytes)
                self.stats.add(f"{level.name}_writebacks")
        victim = l1.fill(address, dirty=is_write)
        if victim is not None and victim.dirty:
            self._writeback_from_l1(victim.block_addr, fill_time)
        if self.miss_latency_hist is not None:
            self.miss_latency_hist.record(total.latency)
        return total

    def _writeback_from_l1(self, block_addr: int, now: float) -> None:
        """Route a dirty L1 eviction into the first lower level."""
        self.stats.add("l1_writebacks")
        first = self.lower[0]
        r = first.access(block_addr, is_write=True, now=now)
        self.stats.add(f"{first.name}_accesses")
        if r.hit:
            self.stats.add(f"{first.name}_hits")
            return
        # Non-inclusive hierarchy: the line may have left the lower
        # level already; the writeback then continues to memory.
        self.memory.write(first.block_bytes)
        self.stats.add("l1_writebacks_to_memory")

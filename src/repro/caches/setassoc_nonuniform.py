"""Set-associative-*placement* non-uniform cache (Figure 4 baseline).

This is the paper's control experiment for distance associativity
(§5.2.1): a cache physically identical to NuRAPID (same d-group
geometry, same sequential tag-data access, same one-ported data side)
but with the conventional *coupling* of tag position to data position.
With A ways over G d-groups, exactly A/G specific ways of every set
live in each d-group, so at most A/G blocks of a hot set can ever be
fast.

Policies mirror the Figure 4 setup: initial placement in the fastest
d-group, demotion of replaced blocks to the next slower group (a
bubble-style chain within the set), LRU data replacement (the evicted
block is the LRU of the slowest group's ways — which, as the paper
notes for D-NUCA, "may not be the set's LRU block"), and next-fastest
promotion by swapping with the LRU way of the adjacent faster group.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import CacheTelemetry
from repro.common.stats import Counter, Distribution
from repro.common.types import AccessResult
from repro.caches.block import block_address, set_index
from repro.caches.port import PortScheduler
from repro.floorplan.dgroups import NuRAPIDGeometry, build_nurapid_geometry
from repro.tech.energy import EnergyBook


class SetAssociativePlacementCache:
    """Non-uniform cache with tag-coupled data placement."""

    def __init__(
        self,
        capacity_bytes: int = 8 * 1024 * 1024,
        block_bytes: int = 128,
        associativity: int = 8,
        n_dgroups: int = 4,
        geometry: Optional[NuRAPIDGeometry] = None,
        energy: Optional[EnergyBook] = None,
        promote: bool = True,
        name: str = "SA-NUCA",
    ) -> None:
        if associativity % n_dgroups:
            raise ConfigurationError(
                "coupled placement needs associativity divisible by d-groups"
            )
        blocks = capacity_bytes // block_bytes
        if blocks % associativity:
            raise ConfigurationError("capacity must hold a whole number of sets")
        self.name = name
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_dgroups = n_dgroups
        self.ways_per_dgroup = associativity // n_dgroups
        self.n_sets = blocks // associativity
        self.promote = promote
        self.geometry = geometry if geometry is not None else build_nurapid_geometry(
            n_dgroups=n_dgroups,
            capacity_bytes=capacity_bytes,
            block_bytes=block_bytes,
            associativity=associativity,
        )

        #: Flat per-frame state; frame = set_index * associativity + way.
        #: -1 in ``_addrs`` marks a free way.
        n_frames = self.n_sets * associativity
        self._addrs: List[int] = [-1] * n_frames
        self._dirty = bytearray(n_frames)
        #: Logical timestamp of the last touch, for LRU-within-group.
        self._touch: List[int] = [0] * n_frames
        self._where: List[Dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._clock = 0
        self.port = PortScheduler(f"{name}.port")

        self.energy = energy if energy is not None else EnergyBook()
        geo = self.geometry
        self.energy.register(f"{name}.tag_probe", geo.tag_energy_nj)
        for spec in geo.dgroups:
            self.energy.register(f"{name}.dg{spec.index}.read", spec.read_energy_nj)
            self.energy.register(f"{name}.dg{spec.index}.write", spec.write_energy_nj)
        for i in range(n_dgroups):
            for j in range(n_dgroups):
                if i != j:
                    self.energy.register(
                        f"{name}.move.{i}->{j}", geo.swap_energy_nj(i, j)
                    )

        self.stats = Counter()
        self.dgroup_hits = Distribution()
        #: Optional telemetry client (None is the null sink).
        self.telemetry: Optional["CacheTelemetry"] = None

    # --- way/d-group mapping (the coupling under study) ---

    def dgroup_of_way(self, way: int) -> int:
        if not 0 <= way < self.associativity:
            raise ConfigurationError(f"way {way} out of range")
        return way // self.ways_per_dgroup

    def _ways_of_dgroup(self, group: int) -> range:
        if not 0 <= group < self.n_dgroups:
            raise ConfigurationError(f"d-group {group} out of range")
        start = group * self.ways_per_dgroup
        return range(start, start + self.ways_per_dgroup)

    def _set_of(self, address: int) -> int:
        return set_index(address, self.block_bytes, self.n_sets)

    # --- lookups ---

    def contains(self, address: int) -> bool:
        baddr = block_address(address, self.block_bytes)
        return baddr in self._where[self._set_of(address)]

    def dgroup_of(self, address: int) -> Optional[int]:
        baddr = block_address(address, self.block_bytes)
        way = self._where[self._set_of(address)].get(baddr)
        return None if way is None else self.dgroup_of_way(way)

    # --- access path ---

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        baddr = block_address(address, self.block_bytes)
        index = self._set_of(address)
        self.stats.add("accesses")
        self._clock += 1
        energy = self.energy.charge(f"{self.name}.tag_probe")

        way = self._where[index].get(baddr)
        if way is None:
            # Sequential tag-data access: the pipelined tag probe alone
            # determines the miss.
            self.stats.add("misses")
            if self.telemetry is not None:
                self.telemetry.on_access(
                    baddr, False, None, float(self.geometry.miss_latency())
                )
            return AccessResult(
                hit=False,
                latency=float(self.geometry.miss_latency()),
                level=self.name,
                energy_nj=energy,
            )

        group = self.dgroup_of_way(way)
        self.stats.add("hits")
        self.dgroup_hits.add(group)
        frame = index * self.associativity + way
        self._touch[frame] = self._clock
        if is_write:
            self._dirty[frame] = 1
        op = "write" if is_write else "read"
        energy += self.energy.charge(f"{self.name}.dg{group}.{op}")
        self.stats.add("dgroup_accesses")

        start, _ = self.port.request(
            now + self.geometry.tag_cycles, self.geometry.data_occupancy(group)
        )
        latency = (start - now) + self.geometry.dgroups[group].data_cycles

        if self.telemetry is not None:
            self.telemetry.on_access(baddr, True, group, latency)

        if group > 0 and self.promote:
            self._promote(index, way, group, now + latency)

        return AccessResult(
            hit=True, latency=latency, level=self.name, dgroup=group, energy_nj=energy
        )

    def _lru_way(self, index: int, group: int, occupied_only: bool = False) -> Optional[int]:
        """LRU way of ``group`` in ``set``; optionally only occupied ways."""
        best: Optional[int] = None
        best_touch = None
        base = index * self.associativity
        for way in self._ways_of_dgroup(group):
            occupied = self._addrs[base + way] >= 0
            if occupied_only and not occupied:
                continue
            touch = (occupied, self._touch[base + way])
            # Free ways sort before occupied ones, then by recency.
            if best_touch is None or touch < best_touch:
                best, best_touch = way, touch
        return best

    def _promote(self, index: int, way: int, group: int, now: float) -> None:
        """Next-fastest promotion: swap with the adjacent group's LRU way."""
        target = group - 1
        peer = self._lru_way(index, target)
        if peer is None:
            raise SimulationError("d-group has no ways in this set")
        self.stats.add("promotions")
        if self.telemetry is not None:
            self.telemetry.event(
                "promotion",
                addr=self._addrs[index * self.associativity + way],
                src=group,
                dst=target,
                cycle=now,
            )
        self._swap_ways(index, way, peer)
        self._charge_move(group, target, now)
        demoted = self._addrs[index * self.associativity + way]
        if demoted >= 0:
            # A real two-way swap (the peer way was occupied).
            self.stats.add("demotions")
            if self.telemetry is not None:
                self.telemetry.event(
                    "demotion", addr=demoted, src=target, dst=group, cycle=now
                )
            self._charge_move(target, group, now)

    def _swap_ways(self, index: int, a: int, b: int) -> None:
        addrs, dirty, touch = self._addrs, self._dirty, self._touch
        base = index * self.associativity
        fa, fb = base + a, base + b
        addrs[fa], addrs[fb] = addrs[fb], addrs[fa]
        dirty[fa], dirty[fb] = dirty[fb], dirty[fa]
        touch[fa], touch[fb] = touch[fb], touch[fa]
        where = self._where[index]
        if addrs[fa] >= 0:
            where[addrs[fa]] = a
        if addrs[fb] >= 0:
            where[addrs[fb]] = b

    def _charge_move(self, src: int, dst: int, now: float, occupy: bool = True) -> None:
        self.energy.charge(f"{self.name}.move.{src}->{dst}")
        self.stats.add("dgroup_accesses", 2)
        self.stats.add("moves")
        if occupy:
            self.port.request(now, self.geometry.swap_occupancy(src, dst))

    # --- fills: place fastest, bubble-demote within the set ---

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        baddr = block_address(address, self.block_bytes)
        index = self._set_of(address)
        if baddr in self._where[index]:
            return 0
        self.stats.add("fills")
        self._clock += 1
        writebacks = 0

        # If the set is full, evict the LRU way of the slowest group
        # (bubble data replacement: not necessarily the set's LRU).
        if len(self._where[index]) >= self.associativity:
            victim_way = self._lru_way(index, self.n_dgroups - 1, occupied_only=True)
            if victim_way is None:
                raise SimulationError("full set has an empty slowest group")
            frame = index * self.associativity + victim_way
            victim_addr = self._addrs[frame]
            assert victim_addr >= 0
            del self._where[index][victim_addr]
            self.stats.add("evictions")
            if self.telemetry is not None:
                self.telemetry.event(
                    "eviction",
                    addr=victim_addr,
                    dgroup=self.dgroup_of_way(victim_way),
                    cycle=now,
                )
            if self._dirty[frame]:
                writebacks = 1
                self.stats.add("writebacks")
                group = self.dgroup_of_way(victim_way)
                self.energy.charge(f"{self.name}.dg{group}.read")
                self.stats.add("dgroup_accesses")
                if self.telemetry is not None:
                    self.telemetry.event(
                        "writeback", addr=victim_addr, dgroup=group, cycle=now
                    )
            self._addrs[frame] = -1
            self._dirty[frame] = 0
            self._touch[frame] = 0

        # Demotion chain toward the freed (or naturally free) way.
        group = 0
        carry_addr = baddr
        carry_dirty = dirty
        carry_touch = self._clock
        while True:
            way = self._lru_way(index, group)
            if way is None:
                raise SimulationError("d-group has no ways in this set")
            frame = index * self.associativity + way
            displaced = (self._addrs[frame], self._dirty[frame], self._touch[frame])
            self._addrs[frame] = carry_addr
            self._dirty[frame] = 1 if carry_dirty else 0
            self._touch[frame] = carry_touch
            self._where[index][carry_addr] = way
            if group > 0:
                self.stats.add("demotions")
                if self.telemetry is not None:
                    self.telemetry.event(
                        "demotion", addr=carry_addr, src=group - 1, dst=group, cycle=now
                    )
                self._charge_move(group - 1, group, now, occupy=False)
            if displaced[0] < 0:
                break
            carry_addr, carry_dirty, carry_touch = displaced
            group += 1
            if group >= self.n_dgroups:
                raise SimulationError("demotion chain overran the slowest group")

        self.energy.charge(f"{self.name}.dg0.write")
        self.stats.add("dgroup_accesses")
        if self.telemetry is not None:
            self.telemetry.event("placement", addr=baddr, dgroup=0, cycle=now)
        return writebacks

    # --- prewarm ---

    PREWARM_BASE = 1 << 45

    def prewarm(self) -> None:
        """Fill every way with a clean dummy block (steady-state start)."""
        for index in range(self.n_sets):
            base = index * self.associativity
            for way in range(self.associativity):
                if self._addrs[base + way] >= 0:
                    continue
                baddr = (
                    self.PREWARM_BASE
                    + (way * self.n_sets + index) * self.block_bytes
                )
                self._addrs[base + way] = baddr
                self._dirty[base + way] = 0
                self._touch[base + way] = 0
                self._where[index][baddr] = way

    # --- introspection ---

    @property
    def miss_rate(self) -> float:
        total = self.stats.get("accesses")
        if not total:
            return 0.0
        return self.stats.get("misses") / total

    def reset_stats(self) -> None:
        """Zero counters after warmup; contents and port timeline kept."""
        self.stats.reset()
        self.dgroup_hits = Distribution()
        self.energy.reset_counts()
        self.port.total_busy = 0.0
        self.port.total_wait = 0.0
        self.port.grants = 0

    def check_invariants(self) -> None:
        for index in range(self.n_sets):
            base = index * self.associativity
            where = self._where[index]
            occupied = sum(
                1 for way in range(self.associativity) if self._addrs[base + way] >= 0
            )
            if len(where) != occupied:
                raise SimulationError(f"set {index} map/slot count mismatch")
            for baddr, way in where.items():
                if self._addrs[base + way] != baddr:
                    raise SimulationError(f"set {index} way {way} map mismatch")
                if self._set_of(baddr) != index:
                    raise SimulationError(f"block {baddr:#x} in wrong set")

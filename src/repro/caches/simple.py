"""Conventional set-associative cache with uniform access latency.

Used for the L1 i/d caches and for both levels of the paper's base
case (1 MB 8-way L2 at 11 cycles over an 8 MB 8-way L3 at 43 cycles,
Table 1/§4).  Placement and replacement are the classic coupled design:
a block's way in the tag array *is* its location in the data array.

State is kept in flat parallel arrays indexed by frame (``set * assoc
+ way``) rather than per-block objects: ``_tags`` holds the resident
block address (-1 = invalid), ``_dirty`` the dirty bits, and
``_stamps`` a monotonically increasing touch stamp that realizes true
LRU (the victim is the valid way with the smallest stamp — exactly the
least recently inserted-or-touched block, bit-identical to the
dict-ordered LRU this class used to keep).  The flat layout is what
the fast replay engine (:mod:`repro.sim.fastpath`) indexes directly;
the methods below are the thin view the rest of the simulator, the
fault injector, and telemetry keep using.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.types import AccessResult
from repro.caches.block import CacheBlock, block_address, set_index
from repro.faults.models import TransientOutcome
from repro.floorplan.dgroups import UniformCacheSpec
from repro.tech.energy import EnergyBook

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.models import FaultPlan
    from repro.telemetry import CacheTelemetry


class SetAssociativeCache:
    """A uniform-latency, LRU, write-back, allocate-on-miss cache."""

    def __init__(self, spec: UniformCacheSpec, energy: Optional[EnergyBook] = None) -> None:
        if spec.block_bytes <= 0 or spec.block_bytes & (spec.block_bytes - 1):
            raise ConfigurationError("block_bytes must be a power of two")
        blocks = spec.capacity_bytes // spec.block_bytes
        if blocks % spec.associativity:
            raise ConfigurationError("capacity must hold a whole number of sets")
        self.spec = spec
        self.name = spec.name
        self.n_sets = blocks // spec.associativity
        if self.n_sets & (self.n_sets - 1):
            raise ConfigurationError("set count must be a power of two")
        assoc = spec.associativity
        self._assoc = assoc
        n_frames = self.n_sets * assoc
        #: Flat per-frame state; frame = set_index * associativity + way.
        self._tags: List[int] = [-1] * n_frames
        self._dirty = bytearray(n_frames)
        self._stamps: List[int] = [0] * n_frames
        #: Global touch clock; strictly increasing so stamps are unique
        #: and min-stamp == true LRU.
        self._clock = 1
        self.energy = energy if energy is not None else EnergyBook()
        self.energy.register(f"{self.name}.read", spec.read_energy_nj)
        self.energy.register(f"{self.name}.write", spec.write_energy_nj)
        self.energy.register(f"{self.name}.tag_probe", spec.tag_energy_nj)
        # Hot-path caches: precomputed op keys/costs, address masks, and a
        # direct view into the energy counts (reset in place, so the
        # reference stays valid across reset_stats()).  Pure
        # re-expressions of the state above; bit-identical behavior.
        self._k_read = f"{self.name}.read"
        self._k_write = f"{self.name}.write"
        self._read_cost = self.energy.cost(self._k_read)
        self._write_cost = self.energy.cost(self._k_write)
        self._ecounts = self.energy._count
        self._block_mask = ~(spec.block_bytes - 1)
        self._set_shift = spec.block_bytes.bit_length() - 1
        self._set_mask = self.n_sets - 1
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fault_refetches = 0
        #: Optional runtime fault injection (see :mod:`repro.faults`).
        #: None keeps the hooks dead code: the no-fault path is
        #: bit-identical to the pre-fault simulator.
        self.fault_injector: Optional["FaultInjector"] = None
        #: Optional telemetry client (None is the null sink).
        self.telemetry: Optional["CacheTelemetry"] = None

    # --- fault injection (opt-in) ---

    def attach_faults(self, plan: "FaultPlan") -> "FaultInjector":
        """Arm this cache with a transient-upset campaign.

        Hard subarray failures need the d-group retirement machinery,
        which only :class:`~repro.nurapid.cache.NuRAPIDCache` models;
        a uniform cache accepts transient-only plans.
        """
        from repro.faults.injector import FaultInjector

        if self.fault_injector is not None:
            raise ConfigurationError(f"{self.name} already has a fault injector")
        if plan.hard_faults:
            raise ConfigurationError(
                f"{self.name} is a uniform cache; hard subarray faults are "
                "only modeled for NuRAPID d-groups"
            )
        self.fault_injector = FaultInjector(plan, self.name, n_dgroups=1)
        return self.fault_injector

    # --- lookups ---

    def _locate(self, address: int) -> int:
        return set_index(address, self.spec.block_bytes, self.n_sets)

    def _find(self, index: int, baddr: int) -> int:
        """Frame holding ``baddr`` within set ``index``, or -1."""
        tags = self._tags
        base = index * self._assoc
        for frame in range(base, base + self._assoc):
            if tags[frame] == baddr:
                return frame
        return -1

    def contains(self, address: int) -> bool:
        baddr = block_address(address, self.spec.block_bytes)
        return self._find(self._locate(address), baddr) >= 0

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        """Present one reference; on a miss the caller fetches and fills.

        The uniform latency covers both the hit case and miss
        determination (tag + data are probed either way in this simple
        organization).  ``now`` is accepted for interface uniformity
        with the banked/ported organizations but unused: the paper's
        L1s are pipelined and the base L2/L3 are not the bandwidth
        bottleneck under study.
        """
        del now
        baddr = address & self._block_mask
        index = (address >> self._set_shift) & self._set_mask
        frame = self._find(index, baddr)
        if is_write:
            self._ecounts[self._k_write] += 1
            energy = self._write_cost
        else:
            self._ecounts[self._k_read] += 1
            energy = self._read_cost
        if frame >= 0:
            if self.fault_injector is not None:
                # May raise UncorrectableDataError for a dirty-line DUE.
                outcome = self.fault_injector.on_access(
                    True, bool(self._dirty[frame]), address
                )
                if outcome is TransientOutcome.REFETCH:
                    # Detected-uncorrectable on a clean line: drop it
                    # and refetch from below, surfaced as a miss.
                    self._tags[frame] = -1
                    self._dirty[frame] = 0
                    self.fault_refetches += 1
                    self.misses += 1
                    if self.telemetry is not None:
                        self.telemetry.on_access(
                            baddr, False, None, float(self.spec.latency_cycles)
                        )
                    return AccessResult(
                        hit=False,
                        latency=self.spec.latency_cycles,
                        level=self.name,
                        energy_nj=energy,
                    )
            self.hits += 1
            self._stamps[frame] = self._clock
            self._clock += 1
            if is_write:
                self._dirty[frame] = 1
            if self.telemetry is not None:
                self.telemetry.on_access(
                    baddr, True, None, float(self.spec.latency_cycles)
                )
            return AccessResult(
                hit=True,
                latency=self.spec.latency_cycles,
                level=self.name,
                energy_nj=energy,
            )
        if self.fault_injector is not None:
            self.fault_injector.on_access(False, False, address)
        self.misses += 1
        if self.telemetry is not None:
            self.telemetry.on_access(
                baddr, False, None, float(self.spec.latency_cycles)
            )
        return AccessResult(
            hit=False,
            latency=self.spec.latency_cycles,
            level=self.name,
            energy_nj=energy,
        )

    # --- fills and evictions ---

    def fill(self, address: int, dirty: bool = False) -> Optional[CacheBlock]:
        """Install a block after a miss; returns any evicted block.

        Fill energy is charged as a write access.  The evicted block is
        returned so the hierarchy can route a dirty writeback to the
        next level.
        """
        baddr = address & self._block_mask
        index = (address >> self._set_shift) & self._set_mask
        if self._find(index, baddr) >= 0:
            # Two misses to the same block can race through the MSHR
            # merge path; the second fill is a no-op.
            return None
        self._ecounts[self._k_write] += 1
        tags = self._tags
        stamps = self._stamps
        base = index * self._assoc
        free = -1
        victim = -1
        victim_stamp = 0
        for frame in range(base, base + self._assoc):
            if tags[frame] < 0:
                if free < 0:
                    free = frame
            elif victim < 0 or stamps[frame] < victim_stamp:
                victim = frame
                victim_stamp = stamps[frame]
        victim_block: Optional[CacheBlock] = None
        if free < 0:
            victim_block = CacheBlock(
                block_addr=tags[victim], dirty=bool(self._dirty[victim])
            )
            if self.telemetry is not None:
                self.telemetry.event("eviction", addr=victim_block.block_addr)
            if victim_block.dirty:
                self.writebacks += 1
                if self.telemetry is not None:
                    self.telemetry.event("writeback", addr=victim_block.block_addr)
            free = victim
        tags[free] = baddr
        self._dirty[free] = 1 if dirty else 0
        stamps[free] = self._clock
        self._clock += 1
        if self.telemetry is not None:
            self.telemetry.event("placement", addr=baddr)
        return victim_block

    def invalidate(self, address: int) -> Optional[CacheBlock]:
        """Remove a block (if present) without writing it back."""
        baddr = block_address(address, self.spec.block_bytes)
        frame = self._find(self._locate(address), baddr)
        if frame < 0:
            return None
        block = CacheBlock(block_addr=baddr, dirty=bool(self._dirty[frame]))
        self._tags[frame] = -1
        self._dirty[frame] = 0
        return block

    # --- prewarm ---

    PREWARM_BASE = 1 << 45

    def prewarm(self) -> None:
        """Fill every way with a clean dummy block (steady-state start)."""
        tags = self._tags
        stamps = self._stamps
        assoc = self._assoc
        clock = self._clock
        block_bytes = self.spec.block_bytes
        n_sets = self.n_sets
        base_addr = self.PREWARM_BASE
        for index in range(n_sets):
            base = index * assoc
            for way in range(assoc):
                baddr = base_addr + (way * n_sets + index) * block_bytes
                if self._find(index, baddr) >= 0:
                    continue
                for frame in range(base, base + assoc):
                    if tags[frame] < 0:
                        tags[frame] = baddr
                        stamps[frame] = clock
                        clock += 1
                        break
        self._clock = clock

    # --- introspection ---

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        """Zero counters after warmup; contents and recency are kept."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fault_refetches = 0
        self.energy.reset_counts()

    def occupancy(self) -> int:
        """Number of resident blocks (for tests and examples)."""
        return sum(1 for tag in self._tags if tag >= 0)

"""NuRAPID: distance associativity for non-uniform cache architectures.

A from-scratch reproduction of Chishti, Powell & Vijaykumar,
"Distance Associativity for High-Performance Energy-Efficient
Non-Uniform Cache Architectures" (MICRO 2003).

Public API highlights:

* :class:`repro.nurapid.NuRAPIDCache` — the paper's contribution.
* :class:`repro.nuca.DNUCACache` — the D-NUCA baseline it is compared
  against.
* :func:`repro.sim.build_system` / :func:`repro.sim.run_benchmark` —
  assemble a core + L1s + L2 (+ L3) system and replay a workload on it.
* :mod:`repro.workloads` — the synthetic SPEC2K-like workload suite.
* :mod:`repro.experiments` — regenerates every table and figure in the
  paper's evaluation (``python -m repro.experiments --list``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

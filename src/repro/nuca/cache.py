"""The D-NUCA cache model.

Organization (§4): the 16 ways of each set spread across a *chain* of
``chain_length`` banks at increasing distance, ``ways_per_bank`` ways
in each.  Blocks enter at the tail (slowest bank), bubble one bank
closer on each hit, and are evicted from the slowest ways — so, as the
paper notes, the victim "may not be the set's LRU block".

Bandwidth model: every bank has its own port (multibanking); the
switched network has infinite bandwidth and zero switch energy — both
idealizations the paper grants D-NUCA (§4).  Searches therefore queue
only at banks, but *every* searched bank is occupied by its probe,
which is exactly the artificial bandwidth demand §2.3 argues NuRAPID
removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import CacheTelemetry
from repro.common.stats import Counter, Distribution
from repro.common.types import AccessResult
from repro.caches.block import block_address, set_index
from repro.caches.port import PortScheduler
from repro.floorplan.dgroups import DNUCAGeometry, build_dnuca_geometry
from repro.nuca.config import DNUCAConfig, SearchPolicy
from repro.nuca.smart_search import SmartSearchArray
from repro.tech.energy import EnergyBook


@dataclass
class _Slot:
    """One way of one set."""

    block_addr: int
    dirty: bool
    last_touch: int


class DNUCACache:
    """Dynamic NUCA L2 implementing the lower-level protocol."""

    def __init__(
        self,
        config: DNUCAConfig,
        geometry: Optional[DNUCAGeometry] = None,
        energy: Optional[EnergyBook] = None,
    ) -> None:
        self.config = config
        self.name = config.name
        self.block_bytes = config.block_bytes
        self.geometry = geometry if geometry is not None else build_dnuca_geometry(
            capacity_bytes=config.capacity_bytes,
            block_bytes=config.block_bytes,
            associativity=config.associativity,
            bank_bytes=config.bank_bytes,
            chain_length=config.chain_length,
            ss_partial_bits=config.ss_partial_bits,
        )
        if self.geometry.chain_length != config.chain_length:
            raise ConfigurationError("geometry and config disagree on chain length")
        if self.geometry.sets != config.n_sets:
            raise ConfigurationError("geometry and config disagree on sets")

        self.n_sets = config.n_sets
        self.ways_per_bank = config.ways_per_bank
        #: per set: position -> slot; position p is level p // ways_per_bank.
        self._slots: List[List[Optional[_Slot]]] = [
            [None] * config.associativity for _ in range(self.n_sets)
        ]
        self._where: List[Dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._clock = 0
        self._ports = [PortScheduler(f"{self.name}.bank{i}") for i in range(self.geometry.n_banks)]

        self.smart_search = SmartSearchArray(
            self.n_sets, config.chain_length, config.ss_partial_bits, config.block_bytes
        )
        self.energy = energy if energy is not None else EnergyBook()
        self._register_energy()

        self.stats = Counter()
        self.dgroup_hits = Distribution()
        #: Optional telemetry client (None is the null sink).
        self.telemetry: Optional["CacheTelemetry"] = None

    def _register_energy(self) -> None:
        self.energy.register(f"{self.name}.ss_probe", self.geometry.ss_energy_nj)
        for bank in self.geometry.banks:
            base = f"{self.name}.bank{bank.index}"
            self.energy.register(f"{base}.probe", bank.probe_energy_nj)
            self.energy.register(f"{base}.read", bank.read_energy_nj)
            self.energy.register(f"{base}.write", bank.write_energy_nj)
            self.energy.register(f"{base}.move", bank.swap_energy_nj)

    # --- geometry helpers ---

    def _set_of(self, address: int) -> int:
        return set_index(address, self.block_bytes, self.n_sets)

    def _chain_of(self, index: int) -> int:
        return index % self.geometry.n_chains

    def _bank_of(self, index: int, level: int):
        return self.geometry.chain_bank(self._chain_of(index), level)

    def _level_of_position(self, position: int) -> int:
        return position // self.ways_per_bank

    # --- lookups ---

    def contains(self, address: int) -> bool:
        baddr = block_address(address, self.block_bytes)
        return baddr in self._where[self._set_of(address)]

    def level_of(self, address: int) -> Optional[int]:
        baddr = block_address(address, self.block_bytes)
        pos = self._where[self._set_of(address)].get(baddr)
        return None if pos is None else self._level_of_position(pos)

    # --- the access path ---

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        baddr = block_address(address, self.block_bytes)
        index = self._set_of(address)
        self.stats.add("accesses")
        self._clock += 1

        policy = self.config.policy
        energy = 0.0
        if policy is not SearchPolicy.INCREMENTAL:
            energy += self.energy.charge(f"{self.name}.ss_probe")
            candidates = self.smart_search.candidate_levels(index, baddr)
        else:
            candidates = list(range(self.config.chain_length))

        pos = self._where[index].get(baddr)
        actual_level = None if pos is None else self._level_of_position(pos)

        if policy is SearchPolicy.SS_PERFORMANCE:
            result = self._access_multicast(
                index, baddr, actual_level, candidates, now, energy
            )
        else:
            result = self._access_sequential(
                index, baddr, actual_level, candidates, now, energy, policy
            )

        if result.hit:
            assert pos is not None and actual_level is not None
            self.stats.add("hits")
            self.dgroup_hits.add(actual_level)
            slot = self._slots[index][pos]
            assert slot is not None
            slot.last_touch = self._clock
            if is_write:
                slot.dirty = True
            if self.telemetry is not None:
                self.telemetry.on_access(baddr, True, actual_level, result.latency)
            if actual_level > 0 and self.config.promote_on_hit:
                self._promote(index, pos, now + result.latency)
        else:
            self.stats.add("misses")
            if self.telemetry is not None:
                self.telemetry.on_access(baddr, False, None, result.latency)
        return result

    def _access_multicast(
        self,
        index: int,
        baddr: int,
        actual_level: Optional[int],
        candidates: List[int],
        now: float,
        energy: float,
    ) -> AccessResult:
        """ss-performance: search every bank; ss-array detects misses early."""
        if actual_level is None and not candidates:
            # Early miss: no partial match, no bank is touched for data,
            # but the multicast has already gone out in this policy.
            self.stats.add("early_misses")
            latency = float(self.geometry.ss_latency_cycles)
            for level in range(self.config.chain_length):
                self._probe_bank(index, level, now)
            return AccessResult(
                hit=False, latency=latency, level=self.name, energy_nj=energy
            )

        worst = 0.0
        for level in range(self.config.chain_length):
            bank = self._bank_of(index, level)
            start, _ = self._ports[bank.index].request(now, bank.occupancy_cycles)
            if level == actual_level:
                energy += self.energy.charge(f"{self.name}.bank{bank.index}.read")
                self.stats.add("dgroup_accesses")
                hit_response = (start - now) + bank.latency_cycles
            else:
                energy += self.energy.charge(f"{self.name}.bank{bank.index}.probe")
                self.stats.add("bank_probes")
            worst = max(worst, (start - now) + bank.latency_cycles)

        if actual_level is not None:
            return AccessResult(
                hit=True,
                latency=hit_response,
                level=self.name,
                dgroup=actual_level,
                energy_nj=energy,
            )
        # Partial match that wasn't the block: the miss is known only
        # when the slowest probe returns.
        self.smart_search.note_false_hit()
        self.stats.add("false_hits")
        return AccessResult(hit=False, latency=worst, level=self.name, energy_nj=energy)

    def _access_sequential(
        self,
        index: int,
        baddr: int,
        actual_level: Optional[int],
        candidates: List[int],
        now: float,
        energy: float,
        policy: SearchPolicy,
    ) -> AccessResult:
        """ss-energy / incremental: probe candidate banks nearest first."""
        elapsed = float(self.geometry.ss_latency_cycles) if policy is SearchPolicy.SS_ENERGY else 0.0
        for level in candidates:
            bank = self._bank_of(index, level)
            start, _ = self._ports[bank.index].request(now + elapsed, bank.occupancy_cycles)
            response = (start - (now + elapsed)) + bank.latency_cycles
            if level == actual_level:
                energy += self.energy.charge(f"{self.name}.bank{bank.index}.read")
                self.stats.add("dgroup_accesses")
                return AccessResult(
                    hit=True,
                    latency=elapsed + response,
                    level=self.name,
                    dgroup=actual_level,
                    energy_nj=energy,
                )
            energy += self.energy.charge(f"{self.name}.bank{bank.index}.probe")
            self.stats.add("bank_probes")
            if policy is SearchPolicy.SS_ENERGY:
                self.smart_search.note_false_hit()
                self.stats.add("false_hits")
            elapsed += response
        return AccessResult(hit=False, latency=elapsed, level=self.name, energy_nj=energy)

    def _probe_bank(self, index: int, level: int, now: float) -> None:
        """Occupy and charge a bank for a (fruitless) multicast probe."""
        bank = self._bank_of(index, level)
        self._ports[bank.index].request(now, bank.occupancy_cycles)
        self.energy.charge(f"{self.name}.bank{bank.index}.probe")
        self.stats.add("bank_probes")

    # --- bubble promotion ---

    def _positions_of_level(self, level: int) -> range:
        start = level * self.ways_per_bank
        return range(start, start + self.ways_per_bank)

    def _victim_position(self, index: int, level: int) -> int:
        """Free way of the level if any, else its LRU way."""
        slots = self._slots[index]
        best = None
        best_key = None
        for position in self._positions_of_level(level):
            slot = slots[position]
            key = (slot is not None, slot.last_touch if slot else 0)
            if best_key is None or key < best_key:
                best, best_key = position, key
        assert best is not None
        return best

    def _promote(self, index: int, position: int, now: float) -> None:
        """Swap one level closer to the core (generational promotion)."""
        level = self._level_of_position(position)
        target = level - 1
        peer = self._victim_position(index, target)
        slots = self._slots[index]
        moving = slots[position]
        assert moving is not None
        displaced = slots[peer]

        slots[peer], slots[position] = moving, displaced
        self._where[index][moving.block_addr] = peer
        self.smart_search.move(index, moving.block_addr, target)
        if displaced is not None:
            self._where[index][displaced.block_addr] = position
            self.smart_search.move(index, displaced.block_addr, level)

        self.stats.add("promotions")
        if self.telemetry is not None:
            self.telemetry.event(
                "promotion", addr=moving.block_addr, src=level, dst=target, cycle=now
            )
        self._charge_move(index, level, target, now)
        if displaced is not None:
            self.stats.add("demotions")
            if self.telemetry is not None:
                self.telemetry.event(
                    "demotion",
                    addr=displaced.block_addr,
                    src=target,
                    dst=level,
                    cycle=now,
                )
            self._charge_move(index, target, level, now)

    def _charge_move(self, index: int, src_level: int, dst_level: int, now: float) -> None:
        src = self._bank_of(index, src_level)
        dst = self._bank_of(index, dst_level)
        # One block move: read at the source, write at the destination,
        # one network hop in between (charged in the bank's move op).
        self.energy.charge(f"{self.name}.bank{src.index}.move")
        self.stats.add("dgroup_accesses", 2)
        self.stats.add("moves")
        self._ports[src.index].request(now, src.occupancy_cycles)
        self._ports[dst.index].request(now, dst.occupancy_cycles)

    # --- fills (tail insertion + slowest-way eviction) ---

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        baddr = block_address(address, self.block_bytes)
        index = self._set_of(address)
        if baddr in self._where[index]:
            return 0
        self.stats.add("fills")
        self._clock += 1
        insert_level = self.config.chain_length - 1 if self.config.tail_insertion else 0

        writebacks = 0
        position = self._victim_position(index, insert_level)
        slots = self._slots[index]
        old = slots[position]
        if old is not None:
            # Evict the slowest (or fastest, under head insertion) way.
            del self._where[index][old.block_addr]
            self.smart_search.remove(index, old.block_addr)
            self.stats.add("evictions")
            if self.telemetry is not None:
                self.telemetry.event(
                    "eviction", addr=old.block_addr, dgroup=insert_level, cycle=now
                )
            if old.dirty:
                writebacks = 1
                self.stats.add("writebacks")
                bank = self._bank_of(index, insert_level)
                self.energy.charge(f"{self.name}.bank{bank.index}.read")
                self.stats.add("dgroup_accesses")
                if self.telemetry is not None:
                    self.telemetry.event(
                        "writeback", addr=old.block_addr, dgroup=insert_level, cycle=now
                    )

        slots[position] = _Slot(block_addr=baddr, dirty=dirty, last_touch=self._clock)
        self._where[index][baddr] = position
        self.smart_search.insert(index, baddr, insert_level)
        bank = self._bank_of(index, insert_level)
        self.energy.charge(f"{self.name}.bank{bank.index}.write")
        self.stats.add("dgroup_accesses")
        if self.telemetry is not None:
            self.telemetry.event(
                "placement", addr=baddr, dgroup=insert_level, cycle=now
            )
        return writebacks

    # --- prewarm (models the paper's 5B-instruction fast-forward) ---

    PREWARM_BASE = 1 << 45

    def prewarm(self) -> None:
        """Fill every way of every bank with a clean dummy block.

        Mirrors :meth:`repro.nurapid.cache.NuRAPIDCache.prewarm`: short
        traces cannot populate 8 MB, and a half-empty D-NUCA would see
        neither tail evictions nor promotion swaps.  Dummies never
        alias workload addresses and cost no writebacks.
        """
        if self.resident_blocks():
            raise SimulationError("prewarm on a non-empty cache")
        for index in range(self.n_sets):
            for position in range(self.config.associativity):
                baddr = (
                    self.PREWARM_BASE
                    + (position * self.n_sets + index) * self.block_bytes
                )
                self._slots[index][position] = _Slot(
                    block_addr=baddr, dirty=False, last_touch=0
                )
                self._where[index][baddr] = position
                self.smart_search.insert(
                    index, baddr, self._level_of_position(position)
                )

    # --- introspection ---

    @property
    def bank_ports(self):
        """The per-bank schedulers (telemetry reads queue pressure here)."""
        return self._ports

    @property
    def miss_rate(self) -> float:
        total = self.stats.get("accesses")
        if not total:
            return 0.0
        return self.stats.get("misses") / total

    def resident_blocks(self) -> int:
        return sum(len(w) for w in self._where)

    def reset_stats(self) -> None:
        """Zero counters after warmup; contents and bank timelines kept."""
        self.stats.reset()
        self.dgroup_hits = Distribution()
        self.energy.reset_counts()
        self.smart_search.lookups = 0
        self.smart_search.false_hits = 0
        for port in self._ports:
            port.total_busy = 0.0
            port.total_wait = 0.0
            port.grants = 0

    def check_invariants(self) -> None:
        for index in range(self.n_sets):
            where = self._where[index]
            slots = self._slots[index]
            occupied = {
                pos: slot.block_addr
                for pos, slot in enumerate(slots)
                if slot is not None
            }
            if len(where) != len(occupied):
                raise SimulationError(f"set {index} slot/map count mismatch")
            for baddr, pos in where.items():
                if occupied.get(pos) != baddr:
                    raise SimulationError(f"set {index} position {pos} mismatch")
                if self._set_of(baddr) != index:
                    raise SimulationError(f"block {baddr:#x} in wrong set")
                level = self._level_of_position(pos)
                ss_levels = self.smart_search._entries[index]
                if ss_levels.get(baddr) != level:
                    raise SimulationError(
                        f"ss-array stale for block {baddr:#x} (set {index})"
                    )

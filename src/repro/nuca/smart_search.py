"""Smart-search array: cached partial tags for D-NUCA (§4, §5.4).

The ss-array holds the ``ss_partial_bits`` least-significant tag bits
of every resident way ("we use the least significant tag bits to
decrease the probability of false hits").  A lookup returns the chain
levels whose partial tags match the request:

* no matching level → a guaranteed miss, detectable without touching
  any bank (ss-performance's early miss detection);
* matching levels → candidates to probe (ss-energy); a candidate whose
  full tag then mismatches is a *false hit*.

The array mirrors the banks' contents, so the cache informs it of
every insert, removal, and level change.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError, SimulationError


class SmartSearchArray:
    """Partial-tag directory over (set, level)."""

    def __init__(self, n_sets: int, chain_length: int, partial_bits: int, block_bytes: int) -> None:
        if n_sets <= 0 or chain_length <= 0:
            raise ConfigurationError("sets and chain length must be positive")
        if not 1 <= partial_bits <= 32:
            raise ConfigurationError("partial_bits must be in [1, 32]")
        self.n_sets = n_sets
        self.chain_length = chain_length
        self.partial_bits = partial_bits
        self.block_bytes = block_bytes
        self._mask = (1 << partial_bits) - 1
        #: per set: block address -> level (mirrors bank residency);
        #: partial tags are recomputed from addresses on lookup, which
        #: models the hardware's stored copies exactly.
        self._entries: List[Dict[int, int]] = [dict() for _ in range(n_sets)]
        self.lookups = 0
        self.false_hits = 0

    def partial_tag(self, block_addr: int) -> int:
        """The stored low-order tag bits for a block address."""
        tag = block_addr // self.block_bytes // self.n_sets
        return tag & self._mask

    # --- mirror maintenance ---

    def insert(self, index: int, block_addr: int, level: int) -> None:
        self._check(index, level)
        self._entries[index][block_addr] = level

    def remove(self, index: int, block_addr: int) -> None:
        try:
            del self._entries[index][block_addr]
        except KeyError:
            raise SimulationError(
                f"ss-array remove of absent block {block_addr:#x}"
            ) from None

    def move(self, index: int, block_addr: int, level: int) -> None:
        self._check(index, level)
        if block_addr not in self._entries[index]:
            raise SimulationError(f"ss-array move of absent block {block_addr:#x}")
        self._entries[index][block_addr] = level

    # --- lookup ---

    def candidate_levels(self, index: int, block_addr: int) -> List[int]:
        """Chain levels with a partial-tag match, nearest first."""
        if not 0 <= index < self.n_sets:
            raise SimulationError(f"set {index} out of range")
        self.lookups += 1
        want = self.partial_tag(block_addr)
        levels = {
            level
            for resident, level in self._entries[index].items()
            if self.partial_tag(resident) == want
        }
        return sorted(levels)

    def note_false_hit(self) -> None:
        self.false_hits += 1

    def _check(self, index: int, level: int) -> None:
        if not 0 <= index < self.n_sets:
            raise SimulationError(f"set {index} out of range")
        if not 0 <= level < self.chain_length:
            raise SimulationError(f"level {level} out of range")

"""Configuration for the D-NUCA baseline."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


class SearchPolicy(enum.Enum):
    """How D-NUCA locates a block among its banks (§5.4).

    * ``SS_PERFORMANCE`` — consult the smart-search array for early
      miss detection while multicasting the search to every bank of
      the chain; best performance, worst energy.
    * ``SS_ENERGY`` — consult the smart-search array first and probe
      only partial-tag-matching banks, nearest first; best energy.
    * ``INCREMENTAL`` — no smart-search array: probe banks nearest
      first unconditionally (Kim et al.'s basic sequential policy,
      kept for ablations).
    """

    SS_PERFORMANCE = "ss-performance"
    SS_ENERGY = "ss-energy"
    INCREMENTAL = "incremental"


@dataclass(frozen=True)
class DNUCAConfig:
    """The paper's optimal D-NUCA configuration (§4) by default."""

    capacity_bytes: int = 8 * 1024 * 1024
    block_bytes: int = 128
    associativity: int = 16
    bank_bytes: int = 64 * 1024
    chain_length: int = 8
    policy: SearchPolicy = SearchPolicy.SS_PERFORMANCE
    #: Bubble promotion on hits (D-NUCA's generational movement).
    promote_on_hit: bool = True
    #: Insert new blocks at the slowest bank (tail insertion); the
    #: head-insertion alternative [7] found inferior is the ablation.
    tail_insertion: bool = True
    ss_partial_bits: int = 7
    seed: int = 0
    name: str = "D-NUCA"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigurationError("capacity and block size must be positive")
        if self.capacity_bytes % self.bank_bytes:
            raise ConfigurationError("capacity must be a whole number of banks")
        if self.associativity % self.chain_length:
            raise ConfigurationError(
                "associativity must spread evenly over the chain"
            )
        blocks = self.capacity_bytes // self.block_bytes
        if blocks % self.associativity:
            raise ConfigurationError("blocks must divide evenly into sets")
        if (self.capacity_bytes // self.bank_bytes) % self.chain_length:
            raise ConfigurationError("banks must divide evenly into chains")
        if not 1 <= self.ss_partial_bits <= 32:
            raise ConfigurationError("ss_partial_bits must be in [1, 32]")

    @property
    def n_banks(self) -> int:
        return self.capacity_bytes // self.bank_bytes

    @property
    def n_chains(self) -> int:
        return self.n_banks // self.chain_length

    @property
    def n_sets(self) -> int:
        return self.capacity_bytes // self.block_bytes // self.associativity

    @property
    def ways_per_bank(self) -> int:
        return self.associativity // self.chain_length

"""D-NUCA baseline (Kim et al., ASPLOS '02) as configured by the paper.

The comparison target of §5.4: an 8 MB, 16-way dynamic-NUCA L2 built
from 128 x 64 KB banks (8 bank-"d-groups" per set, i.e. a chain of 8
banks holding 2 ways each), with:

* parallel tag-data access inside each bank,
* a *smart-search* array caching 7 low-order tag bits per way,
* ``ss-performance`` (multicast all banks, early miss detection) and
  ``ss-energy`` (probe partial-tag candidates nearest-first) policies,
* bubble (generational) promotion on hits and tail insertion on fills,
* multibanked operation with per-bank contention and an idealized
  infinite-bandwidth, zero-energy switched network (§4's deliberate
  advantage to D-NUCA).
"""

from repro.nuca.config import DNUCAConfig, SearchPolicy
from repro.nuca.smart_search import SmartSearchArray
from repro.nuca.cache import DNUCACache
from repro.nuca.snuca import SNUCACache

__all__ = ["DNUCACache", "DNUCAConfig", "SNUCACache", "SearchPolicy", "SmartSearchArray"]

"""S-NUCA: the *static* non-uniform cache from Kim et al. (ASPLOS '02).

The paper's D-NUCA baseline is the dynamic variant; the original NUCA
work also defined S-NUCA-2, where each set is statically mapped to one
bank by its address — no searching, no movement, but also no way to
put hot data close.  Including it completes the NUCA lineage and gives
the ``ablation_snuca`` experiment a second reference point: how much
of D-NUCA's/NuRAPID's gain comes from *any* non-uniformity versus
from *managed placement*.

Implementation: the same 128 x 64 KB bank geometry as D-NUCA, but the
whole 16-way set lives in the single bank selected by low set-index
bits.  An access goes straight to that bank (one probe, no ss-array),
hits at the bank's latency or misses after its tag check.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common import prewarm_cache
from repro.common.errors import ConfigurationError
from repro.common.stats import Counter, Distribution
from repro.common.types import AccessResult
from repro.caches.block import block_address, set_index
from repro.caches.port import PortScheduler
from repro.common.lru import LRUPolicy
from repro.floorplan.dgroups import DNUCAGeometry, build_dnuca_geometry
from repro.tech.energy import EnergyBook


class SNUCACache:
    """Statically-mapped non-uniform L2 (lower-level protocol)."""

    def __init__(
        self,
        capacity_bytes: int = 8 * 1024 * 1024,
        block_bytes: int = 128,
        associativity: int = 16,
        geometry: Optional[DNUCAGeometry] = None,
        energy: Optional[EnergyBook] = None,
        name: str = "S-NUCA",
    ) -> None:
        self.name = name
        self.block_bytes = block_bytes
        self.associativity = associativity
        blocks = capacity_bytes // block_bytes
        if blocks % associativity:
            raise ConfigurationError("capacity must hold a whole number of sets")
        self.n_sets = blocks // associativity
        if self.n_sets & (self.n_sets - 1):
            raise ConfigurationError("set count must be a power of two")
        self.geometry = geometry if geometry is not None else build_dnuca_geometry(
            capacity_bytes=capacity_bytes,
            block_bytes=block_bytes,
            associativity=associativity,
        )
        if self.n_sets % self.geometry.n_banks:
            raise ConfigurationError("sets must divide evenly over the banks")

        # Each set maps block address -> dirty flag; the tag is the key
        # itself, so no per-line object is needed.
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self._lru: List[LRUPolicy] = [LRUPolicy() for _ in range(self.n_sets)]
        self._ports = [
            PortScheduler(f"{name}.bank{i}") for i in range(self.geometry.n_banks)
        ]
        self.energy = energy if energy is not None else EnergyBook()
        for bank in self.geometry.banks:
            base = f"{name}.bank{bank.index}"
            self.energy.register(f"{base}.read", bank.read_energy_nj)
            self.energy.register(f"{base}.write", bank.write_energy_nj)
            self.energy.register(f"{base}.probe", bank.probe_energy_nj)
        self.stats = Counter()
        self.dgroup_hits = Distribution()

        # Hot-path caches: precomputed per-bank key strings, costs, and
        # latency/occupancy/row tables, plus direct views into the
        # stats/energy dicts (both reset in place, so these references
        # stay valid across reset_stats()).  Pure re-expressions of the
        # state above — counter totals and float math are bit-identical
        # to the uncached path.
        self._block_mask = ~(block_bytes - 1)
        self._set_shift = block_bytes.bit_length() - 1
        self._set_mask = self.n_sets - 1
        self._n_banks = self.geometry.n_banks
        banks = self.geometry.banks
        self._k_probe = [f"{name}.bank{b.index}.probe" for b in banks]
        self._k_read = [f"{name}.bank{b.index}.read" for b in banks]
        self._k_write = [f"{name}.bank{b.index}.write" for b in banks]
        self._probe_cost = [self.energy.cost(k) for k in self._k_probe]
        self._read_cost = [self.energy.cost(k) for k in self._k_read]
        self._write_cost = [self.energy.cost(k) for k in self._k_write]
        self._bank_lat = [b.latency_cycles for b in banks]
        self._bank_occ = [b.occupancy_cycles for b in banks]
        self._bank_row = [b.row for b in banks]
        self._port_of = [self._ports[b.index] for b in banks]
        self._scounts = self.stats._counts
        self._ecounts = self.energy._count

    # --- static mapping ---

    def _set_of(self, address: int) -> int:
        return set_index(address, self.block_bytes, self.n_sets)

    def bank_of_set(self, index: int):
        """The one bank a set lives in, fixed by address bits."""
        return self.geometry.banks[index % self.geometry.n_banks]

    def contains(self, address: int) -> bool:
        baddr = block_address(address, self.block_bytes)
        return baddr in self._sets[self._set_of(address)]

    # --- access path: one bank, no search ---

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        baddr = address & self._block_mask
        index = (address >> self._set_shift) & self._set_mask
        bi = index % self._n_banks
        sc = self._scounts
        sc["accesses"] = sc.get("accesses", 0) + 1
        # PortScheduler.request, inlined (occupancy is a non-negative
        # per-bank constant and now is the driver's non-negative clock,
        # so the scheduler's guard checks cannot fire).
        port = self._port_of[bi]
        occ = self._bank_occ[bi]
        bu = port.busy_until
        start = now if now >= bu else bu
        port.busy_until = start + occ
        port.total_busy += occ
        wait = start - now
        port.total_wait += wait
        port.grants += 1

        resident = self._sets[index]
        hit = baddr in resident
        if not hit:
            sc["misses"] = sc.get("misses", 0) + 1
            self._ecounts[self._k_probe[bi]] += 1
            return AccessResult(
                hit=False,
                latency=wait + self._bank_lat[bi],
                level=self.name,
                energy_nj=self._probe_cost[bi],
            )
        sc["hits"] = sc.get("hits", 0) + 1
        # Report the bank's latency tier (row) where d-groups would be.
        row = self._bank_row[bi]
        dh = self.dgroup_hits.counts
        dh[row] = dh.get(row, 0) + 1
        sc["dgroup_accesses"] = sc.get("dgroup_accesses", 0) + 1
        self._lru[index].touch(baddr)
        if is_write:
            resident[baddr] = True
            self._ecounts[self._k_write[bi]] += 1
            energy = self._write_cost[bi]
        else:
            self._ecounts[self._k_read[bi]] += 1
            energy = self._read_cost[bi]
        return AccessResult(
            hit=True,
            latency=wait + self._bank_lat[bi],
            level=self.name,
            dgroup=row,
            energy_nj=energy,
        )

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        baddr = address & self._block_mask
        index = (address >> self._set_shift) & self._set_mask
        resident = self._sets[index]
        if baddr in resident:
            return 0
        sc = self._scounts
        sc["fills"] = sc.get("fills", 0) + 1
        bi = index % self._n_banks
        writebacks = 0
        if len(resident) >= self.associativity:
            victim_addr = self._lru[index].pop_victim()
            victim_dirty = resident.pop(victim_addr)
            sc["evictions"] = sc.get("evictions", 0) + 1
            if victim_dirty:
                writebacks = 1
                sc["writebacks"] = sc.get("writebacks", 0) + 1
                self._ecounts[self._k_read[bi]] += 1
        resident[baddr] = dirty
        self._lru[index].insert(baddr)
        self._ecounts[self._k_write[bi]] += 1
        sc["dgroup_accesses"] = sc.get("dgroup_accesses", 0) + 1
        return writebacks

    # --- protocol extras ---

    PREWARM_BASE = 1 << 45

    def prewarm(self) -> None:
        """Fill every way with clean dummies (steady-state start)."""
        n_sets = self.n_sets
        bb = self.block_bytes
        base = self.PREWARM_BASE
        assoc = self.associativity
        # The fill is a pure function of the geometry-free shape (sets,
        # ways, block size): reuse a process-wide prototype when this
        # cache is empty (see repro.common.prewarm_cache).
        key = None
        if not any(self._sets):
            key = f"{type(self).__qualname__}|{n_sets}|{assoc}|{bb}"
            proto = prewarm_cache.get(key)
            if proto is not None:
                sets, lru = proto
                self._sets = [dict(s) for s in sets]
                for policy, state in zip(self._lru, lru):
                    policy.load_state(state)
                return
        # base + (way*n_sets + index)*bb for every (set, way), one C pass.
        rows = (
            base
            + (
                np.arange(n_sets, dtype=np.int64)[:, None]
                + np.arange(assoc, dtype=np.int64)[None, :] * n_sets
            )
            * bb
        ).tolist()
        for index in range(n_sets):
            resident = self._sets[index]
            if not resident:
                # Bulk path for the common fresh-cache case: same
                # addresses in the same way-ascending order.
                baddrs = rows[index]
                self._sets[index] = dict.fromkeys(baddrs, False)
                self._lru[index].insert_many(baddrs)
                continue
            fresh = []
            for way in range(assoc):
                baddr = base + (way * n_sets + index) * bb
                if baddr not in resident:
                    resident[baddr] = False
                    fresh.append(baddr)
            self._lru[index].insert_many(fresh)
        if key is not None:
            prewarm_cache.put(
                key,
                (
                    [dict(s) for s in self._sets],
                    [p.state_copy() for p in self._lru],
                ),
            )

    def reset_stats(self) -> None:
        self.stats.reset()
        self.dgroup_hits = Distribution()
        self.energy.reset_counts()
        for port in self._ports:
            port.total_busy = 0.0
            port.total_wait = 0.0
            port.grants = 0

    @property
    def bank_ports(self):
        """The per-bank schedulers (telemetry reads queue pressure here)."""
        return self._ports

    @property
    def miss_rate(self) -> float:
        total = self.stats.get("accesses")
        if not total:
            return 0.0
        return self.stats.get("misses") / total

    def check_invariants(self) -> None:
        for index, resident in enumerate(self._sets):
            if len(resident) > self.associativity:
                raise ConfigurationError(f"set {index} over associativity")
            if len(self._lru[index]) != len(resident):
                raise ConfigurationError(f"set {index} LRU/tag mismatch")

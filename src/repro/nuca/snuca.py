"""S-NUCA: the *static* non-uniform cache from Kim et al. (ASPLOS '02).

The paper's D-NUCA baseline is the dynamic variant; the original NUCA
work also defined S-NUCA-2, where each set is statically mapped to one
bank by its address — no searching, no movement, but also no way to
put hot data close.  Including it completes the NUCA lineage and gives
the ``ablation_snuca`` experiment a second reference point: how much
of D-NUCA's/NuRAPID's gain comes from *any* non-uniformity versus
from *managed placement*.

Implementation: the same 128 x 64 KB bank geometry as D-NUCA, but the
whole 16-way set lives in the single bank selected by low set-index
bits.  An access goes straight to that bank (one probe, no ss-array),
hits at the bank's latency or misses after its tag check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import Counter, Distribution
from repro.common.types import AccessResult
from repro.caches.block import block_address, set_index
from repro.caches.port import PortScheduler
from repro.common.lru import LRUPolicy
from repro.floorplan.dgroups import DNUCAGeometry, build_dnuca_geometry
from repro.tech.energy import EnergyBook


@dataclass
class _Line:
    block_addr: int
    dirty: bool


class SNUCACache:
    """Statically-mapped non-uniform L2 (lower-level protocol)."""

    def __init__(
        self,
        capacity_bytes: int = 8 * 1024 * 1024,
        block_bytes: int = 128,
        associativity: int = 16,
        geometry: Optional[DNUCAGeometry] = None,
        energy: Optional[EnergyBook] = None,
        name: str = "S-NUCA",
    ) -> None:
        self.name = name
        self.block_bytes = block_bytes
        self.associativity = associativity
        blocks = capacity_bytes // block_bytes
        if blocks % associativity:
            raise ConfigurationError("capacity must hold a whole number of sets")
        self.n_sets = blocks // associativity
        self.geometry = geometry if geometry is not None else build_dnuca_geometry(
            capacity_bytes=capacity_bytes,
            block_bytes=block_bytes,
            associativity=associativity,
        )
        if self.n_sets % self.geometry.n_banks:
            raise ConfigurationError("sets must divide evenly over the banks")

        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self.n_sets)]
        self._lru: List[LRUPolicy] = [LRUPolicy() for _ in range(self.n_sets)]
        self._ports = [
            PortScheduler(f"{name}.bank{i}") for i in range(self.geometry.n_banks)
        ]
        self.energy = energy if energy is not None else EnergyBook()
        for bank in self.geometry.banks:
            base = f"{name}.bank{bank.index}"
            self.energy.register(f"{base}.read", bank.read_energy_nj)
            self.energy.register(f"{base}.write", bank.write_energy_nj)
            self.energy.register(f"{base}.probe", bank.probe_energy_nj)
        self.stats = Counter()
        self.dgroup_hits = Distribution()

    # --- static mapping ---

    def _set_of(self, address: int) -> int:
        return set_index(address, self.block_bytes, self.n_sets)

    def bank_of_set(self, index: int):
        """The one bank a set lives in, fixed by address bits."""
        return self.geometry.banks[index % self.geometry.n_banks]

    def contains(self, address: int) -> bool:
        baddr = block_address(address, self.block_bytes)
        return baddr in self._sets[self._set_of(address)]

    # --- access path: one bank, no search ---

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        baddr = block_address(address, self.block_bytes)
        index = self._set_of(address)
        bank = self.bank_of_set(index)
        self.stats.add("accesses")
        start, _ = self._ports[bank.index].request(now, bank.occupancy_cycles)
        wait = start - now

        line = self._sets[index].get(baddr)
        if line is None:
            self.stats.add("misses")
            energy = self.energy.charge(f"{self.name}.bank{bank.index}.probe")
            return AccessResult(
                hit=False,
                latency=wait + bank.latency_cycles,
                level=self.name,
                energy_nj=energy,
            )
        self.stats.add("hits")
        # Report the bank's latency tier (row) where d-groups would be.
        self.dgroup_hits.add(bank.row)
        self.stats.add("dgroup_accesses")
        self._lru[index].touch(baddr)
        if is_write:
            line.dirty = True
        op = "write" if is_write else "read"
        energy = self.energy.charge(f"{self.name}.bank{bank.index}.{op}")
        return AccessResult(
            hit=True,
            latency=wait + bank.latency_cycles,
            level=self.name,
            dgroup=bank.row,
            energy_nj=energy,
        )

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        baddr = block_address(address, self.block_bytes)
        index = self._set_of(address)
        resident = self._sets[index]
        if baddr in resident:
            return 0
        self.stats.add("fills")
        bank = self.bank_of_set(index)
        writebacks = 0
        if len(resident) >= self.associativity:
            victim_addr = self._lru[index].pop_victim()
            victim = resident.pop(victim_addr)
            self.stats.add("evictions")
            if victim.dirty:
                writebacks = 1
                self.stats.add("writebacks")
                self.energy.charge(f"{self.name}.bank{bank.index}.read")
        resident[baddr] = _Line(block_addr=baddr, dirty=dirty)
        self._lru[index].insert(baddr)
        self.energy.charge(f"{self.name}.bank{bank.index}.write")
        self.stats.add("dgroup_accesses")
        return writebacks

    # --- protocol extras ---

    PREWARM_BASE = 1 << 45

    def prewarm(self) -> None:
        """Fill every way with clean dummies (steady-state start)."""
        n_sets = self.n_sets
        bb = self.block_bytes
        base = self.PREWARM_BASE
        for index in range(n_sets):
            resident = self._sets[index]
            fresh = []
            for way in range(self.associativity):
                baddr = base + (way * n_sets + index) * bb
                if baddr not in resident:
                    resident[baddr] = _Line(block_addr=baddr, dirty=False)
                    fresh.append(baddr)
            self._lru[index].insert_many(fresh)

    def reset_stats(self) -> None:
        self.stats.reset()
        self.dgroup_hits = Distribution()
        self.energy.reset_counts()
        for port in self._ports:
            port.total_busy = 0.0
            port.total_wait = 0.0
            port.grants = 0

    @property
    def miss_rate(self) -> float:
        total = self.stats.get("accesses")
        if not total:
            return 0.0
        return self.stats.get("misses") / total

    def check_invariants(self) -> None:
        for index, resident in enumerate(self._sets):
            if len(resident) > self.associativity:
                raise ConfigurationError(f"set {index} over associativity")
            if len(self._lru[index]) != len(resident):
                raise ConfigurationError(f"set {index} LRU/tag mismatch")

"""Config factories and metrics for CMP experiments.

Separate from :mod:`repro.cmp.config` because these build full
``SystemConfig`` objects (and ``repro.sim.config`` itself imports the
cmp config module, so the dependency must point this way).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.cmp.config import CmpConfig, CompressionConfig, ContentionConfig
from repro.sim.config import SystemConfig, nurapid_config, snuca_config


def cmp_nurapid_config(
    cores: int = 2,
    contention: bool = True,
    compression: bool = False,
    n_banks: int = 8,
    bytes_per_cycle: float = 16.0,
    ratio: int = 2,
    compressed_dgroups: int = 1,
    n_dgroups: int = 4,
    capacity_kb: Optional[int] = None,
    seed: int = 0,
    name: Optional[str] = None,
) -> SystemConfig:
    """A shared NuRAPID LLC under ``cores`` cores.

    ``capacity_kb`` shrinks the LLC below the paper's 8 MB — the
    compression ablation uses this to put real capacity pressure on
    the fast d-group at smoke scale.

    The name encodes the scenario axis (``nurapid-cmp2-b8`` etc.) so
    cached results, memo keys, and bench entries never mix scenarios.
    """
    base = nurapid_config(n_dgroups=n_dgroups, seed=seed)
    if capacity_kb is not None:
        base = dataclasses.replace(
            base,
            nurapid=dataclasses.replace(
                base.nurapid, capacity_bytes=capacity_kb * 1024
            ),
        )
    label = name or (
        f"nurapid-cmp{cores}"
        + (f"-b{n_banks}" if contention else "")
        + (f"-comp{ratio}x" if compression else "")
        + (f"-{capacity_kb}kb" if capacity_kb is not None else "")
    )
    cmp = CmpConfig(
        cores=cores,
        contention=(
            ContentionConfig(n_banks=n_banks, bytes_per_cycle=bytes_per_cycle)
            if contention
            else None
        ),
        compression=(
            CompressionConfig(ratio=ratio, compressed_dgroups=compressed_dgroups)
            if compression
            else None
        ),
    )
    return dataclasses.replace(base, name=label, cmp=cmp)


def cmp_snuca_config(
    cores: int = 2,
    contention: bool = True,
    n_banks: int = 8,
    bytes_per_cycle: float = 16.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> SystemConfig:
    """The S-NUCA baseline sharing its LLC across ``cores`` cores."""
    base = snuca_config(seed=seed)
    label = name or (
        f"s-nuca-cmp{cores}" + (f"-b{n_banks}" if contention else "")
    )
    cmp = CmpConfig(
        cores=cores,
        contention=(
            ContentionConfig(n_banks=n_banks, bytes_per_cycle=bytes_per_cycle)
            if contention
            else None
        ),
    )
    return dataclasses.replace(base, name=label, cmp=cmp)


def per_core_ipcs(result) -> List[float]:
    """Per-core IPCs from a RunResult (single-core: the chip IPC)."""
    cores = int(result.stats.get("cmp.cores", 1))
    if cores <= 1:
        return [result.ipc]
    return [result.stats[f"c{i}.ipc"] for i in range(cores)]

"""Bank-contention wrapper for the cache under study.

The paper assumes the L2's data array can source a line every cycle;
with several cores sharing one LLC that assumption dominates results.
``ContendedLLC`` wraps any of the non-uniform caches with per-bank
FCFS queues (the Sniper ``QueueModel`` idiom): every hit's line
transfer occupies its home bank for ``block_bytes / bytes_per_cycle``
cycles, and a request arriving at a busy bank waits.  Fills charge
their bank too, so refill traffic steals demand bandwidth.

Queueing adds *wait* only — an unloaded bank returns exactly the
wrapped cache's latency, so a one-core contended run differs from the
uncontended model only when its own fills collide with its own hits.

Everything else forwards to the wrapped cache.  The wrapper
deliberately does **not** answer ``.cache``: the driver unwraps levels
exposing that attribute as uniform-cache adapters, and this wrapper
must stay in the stats path as the cache under study.
"""

from __future__ import annotations

from typing import List, Optional

from repro.caches.port import PortScheduler
from repro.cmp.config import ContentionConfig
from repro.common.types import AccessResult


class ContendedLLC:
    """Per-bank queueing layered over a lower-level cache."""

    def __init__(self, inner, contention: ContentionConfig) -> None:
        self._inner = inner
        self.contention = contention
        block = inner.block_bytes
        self._service = block / contention.bytes_per_cycle
        self._n_banks = contention.n_banks
        self._block_shift = max(block.bit_length() - 1, 0)
        self.bank_ports: List[PortScheduler] = [
            PortScheduler(f"{inner.name}.bank{i}")
            for i in range(contention.n_banks)
        ]
        #: Optional queue-depth histogram, attached by the telemetry
        #: session; records the depth each access observes on arrival.
        self.queue_depth_hist = None

    # --- identity / forwarding ---

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def block_bytes(self) -> int:
        return self._inner.block_bytes

    @property
    def telemetry(self):
        return self._inner.telemetry

    @telemetry.setter
    def telemetry(self, client) -> None:
        self._inner.telemetry = client

    def __getattr__(self, attr: str):
        # The driver treats levels exposing ``.cache`` as uniform
        # wrappers to unwrap; this wrapper must stay visible.
        if attr in ("cache", "_inner"):
            raise AttributeError(attr)
        return getattr(self._inner, attr)

    # --- the LowerLevel protocol, with bank queueing ---

    def _bank_of(self, address: int) -> PortScheduler:
        return self.bank_ports[(int(address) >> self._block_shift) % self._n_banks]

    def access(
        self, address: int, is_write: bool = False, now: float = 0.0
    ) -> AccessResult:
        result = self._inner.access(address, is_write, now)
        if result.hit:
            port = self._bank_of(address)
            if self.queue_depth_hist is not None:
                self.queue_depth_hist.record(port.pending_depth(now, self._service))
            start, _ = port.request(now, self._service)
            result.latency += start - now
        return result

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        # The refill's line write occupies its bank (stealing demand
        # bandwidth) but rides the fill buffers: the wrapped cache
        # installs at the caller's fill time either way.
        self._bank_of(address).request(now, self._service)
        return self._inner.fill(address, now, dirty)

    def prewarm(self) -> None:
        self._inner.prewarm()

    def reset_stats(self) -> None:
        """Zero counters; bank timelines are kept so queueing stays
        causal across the warmup boundary (same contract as the
        wrapped cache's port)."""
        self._inner.reset_stats()
        for port in self.bank_ports:
            port.total_busy = 0.0
            port.total_wait = 0.0
            port.grants = 0

    # --- contention accounting ---

    def bank_wait_cycles(self) -> float:
        return sum(port.total_wait for port in self.bank_ports)

    def bank_busy_cycles(self) -> float:
        return sum(port.total_busy for port in self.bank_ports)

    def bank_grants(self) -> int:
        return sum(port.grants for port in self.bank_ports)

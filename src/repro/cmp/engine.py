"""The multi-core replay loop for shared-LLC scenarios.

``run_cmp`` is the CMP counterpart of
:func:`repro.sim.driver.run_benchmark`, dispatched by the driver when
``config.cmp.cores > 1``.  Each core gets its own L1d/L1i, hierarchy
books, and timing model; all hierarchies share one lower-level list
(the cache under study, possibly contended and/or compressed) and one
main memory.  Per-core traces are generated with derived seeds and
merged by the deterministic interleaver, so results are seed-stable
and identical across worker processes.

Replay is a single scalar loop shared by every exact engine: the
per-core clocks are independent (each core advances only on its own
references), which is exactly the precondition the fused single-core
kernels do not handle, so legacy/fast/vectorized all route here and
trivially agree.  ``approx`` has no multi-core model and is rejected.

Accounting: the RunResult's headline numbers aggregate the chip
(instructions summed, cycles = the slowest core's measured window, L2
books from the shared cache) while ``stats`` carries per-core
``c{i}.*`` metrics — IPC, L2 accesses/hits/misses, shared-cache block
occupancy — plus ``bankq.*`` contention aggregates, which is what the
fairness and throughput figures read.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.memory import MainMemory
from repro.caches.simple import SetAssociativeCache
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.cpu.core import CoreModel
from repro.cpu.wattch import ProcessorEnergyModel
from repro.sim.config import (
    SystemConfig,
    _l1_spec,
    build_lower_level,
    resolve_engine,
)
from repro.sim.driver import (
    System,
    _cache_counters,
    _capture_lower,
    _dgroup_fractions,
    _l2_stats,
    _lower_energy_nj,
)
from repro.sim.results import RunResult
from repro.telemetry import (
    LATENCY_BOUNDS,
    NullProfiler,
    Telemetry,
    TelemetryConfig,
    occupancy_bounds,
)
from repro.workloads.interleave import (
    CORE_ADDR_SHIFT,
    CmpTrace,
    MAX_CORES,
    interleave_traces,
    parse_cmp_benchmark,
)
from repro.workloads.spec2k import BenchmarkProfile, get_benchmark
from repro.workloads.tracegen import generate_trace


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog."""
    if not values:
        return 0.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0.0:
        return 0.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def generate_cmp_trace(
    config: SystemConfig,
    benchmark: str,
    n_references: int,
    seed: int,
    warm_set_conflict: int = 1,
    profiles: Optional[List[BenchmarkProfile]] = None,
) -> CmpTrace:
    """Seed-derived per-core traces, merged by the interleaver.

    ``n_references`` is the chip total; each core contributes an equal
    share.  Core ``i``'s stream uses ``derive_seed(seed, "cmp/core{i}")``
    so streams are independent and any core's stream is reproducible
    in isolation.
    """
    cores = config.cmp.cores if config.cmp is not None else 1
    if profiles is None:
        profiles = [
            get_benchmark(name) for name in parse_cmp_benchmark(benchmark, cores)
        ]
    per_core = n_references // cores
    if per_core < 1:
        raise ConfigurationError(
            f"{n_references} references cannot feed {cores} cores"
        )
    streams = [
        generate_trace(
            profiles[i],
            per_core,
            seed=derive_seed(seed, f"cmp/core{i}"),
            warm_set_conflict=warm_set_conflict,
        )
        for i in range(cores)
    ]
    return interleave_traces(
        streams, [p.core_ipc for p in profiles], benchmark=benchmark
    )


def make_cmp_systems(
    config: SystemConfig, cores: int, prewarm: bool = True
) -> List[System]:
    """Per-core Systems sharing one lower-level list and memory."""
    lower = build_lower_level(config)
    memory = MainMemory()
    if prewarm:
        for level in lower:
            target = getattr(level, "cache", level)
            target.prewarm()
    systems = []
    for i in range(cores):
        l1d = SetAssociativeCache(_l1_spec(f"c{i}.L1d"))
        l1i = SetAssociativeCache(_l1_spec(f"c{i}.L1i"))
        hierarchy = CacheHierarchy(l1d=l1d, lower=lower, memory=memory, l1i=l1i)
        systems.append(
            System(
                config=config,
                hierarchy=hierarchy,
                l1d=l1d,
                l1i=l1i,
                lower=lower,
                memory=memory,
            )
        )
    return systems


def _replay_cmp(systems: List[System], cores: List[CoreModel], trace: CmpTrace) -> None:
    """The multi-core hot loop.

    Each record advances only its issuing core (by its own gap, on its
    own clock) and walks that core's hierarchy; the shared LLC sees
    the interleaved stream with per-core timestamps, which its port
    and bank schedulers serialize.
    """
    accesses = [system.hierarchy.access_data for system in systems]
    advances = [core.advance_instructions for core in cores]
    notes = [core.note_memory_result for core in cores]
    columns = trace.trace
    for gap, address, is_write, owner in zip(
        columns.gaps.tolist(),
        columns.addresses.tolist(),
        columns.writes.tolist(),
        trace.cores.tolist(),
    ):
        advances[owner](gap)
        result = accesses[owner](address, is_write, cores[owner].cycle)
        notes[owner](address, result)


def _shared_occupancy_by_core(target, n_cores: int) -> Optional[List[int]]:
    """Census of shared-LLC blocks per owning core (address bits)."""
    tag_sets = getattr(target, "_tags", None)
    if tag_sets is None:
        tag_sets = getattr(target, "_sets", None)
    if tag_sets is None:
        return None
    counts = [0] * n_cores
    base = target.PREWARM_BASE if hasattr(target, "PREWARM_BASE") else None
    for tag_set in tag_sets:
        for baddr in tag_set:
            if base is not None and baddr >= base:
                continue  # prewarm dummies belong to no core
            core = (baddr >> CORE_ADDR_SHIFT) & (MAX_CORES - 1)
            if core < n_cores:
                counts[core] += 1
    return counts


def _attach_cmp_telemetry(
    systems: List[System], cores: List[CoreModel], session: Telemetry
) -> None:
    for i, (system, core) in enumerate(zip(systems, cores)):
        system.l1d.telemetry = session.cache_client(system.l1d.name)
        system.l1i.telemetry = session.cache_client(system.l1i.name)
        system.hierarchy.miss_latency_hist = session.histogram(
            f"c{i}.hierarchy.l1_miss_latency", LATENCY_BOUNDS
        )
        core.mshrs.occupancy_hist = session.histogram(
            f"c{i}.core.mshr_occupancy", occupancy_bounds(core.params.mshrs)
        )
    attached = set()
    for level in systems[0].lower:
        target = getattr(level, "cache", level)
        if id(target) in attached:
            continue
        attached.add(id(target))
        target.telemetry = session.cache_client(target.name)
        if "queue_depth_hist" in getattr(level, "__dict__", {}):
            level.queue_depth_hist = session.histogram(
                f"{level.name}.bank_queue_depth", occupancy_bounds(16)
            )


def _capture_cmp_telemetry(
    systems: List[System], cores: List[CoreModel], session: Telemetry
) -> None:
    for i, (system, core) in enumerate(zip(systems, cores)):
        session.capture_counters(system.l1d.name, _cache_counters(system.l1d))
        session.capture_energy(system.l1d.name, system.l1d.energy)
        session.capture_counters(system.l1i.name, _cache_counters(system.l1i))
        session.capture_energy(system.l1i.name, system.l1i.energy)
        session.capture_counters(
            f"c{i}.hierarchy", system.hierarchy.stats.as_dict()
        )
        for key, value in sorted(core.counters().items()):
            session.capture_gauge(f"c{i}.core.{key}", value)
    captured = set()
    for level in systems[0].lower:
        target = getattr(level, "cache", level)
        if id(target) in captured:
            continue
        captured.add(id(target))
        _capture_lower(session, target)
    memory = systems[0].memory
    session.capture_gauge("memory.reads", memory.reads)
    session.capture_gauge("memory.writes", memory.writes)


def run_cmp(
    config: SystemConfig,
    benchmark: str,
    n_references: int,
    seed: int,
    warmup_fraction: float,
    energy_model: Optional[ProcessorEnergyModel] = None,
    warm_set_conflict: int = 1,
    prewarm: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunResult:
    """Run one CMP benchmark spec; same contract as run_benchmark."""
    cmp = config.cmp
    if cmp is None or cmp.cores < 2:
        raise ConfigurationError("run_cmp needs a CmpConfig with cores >= 2")
    engine = resolve_engine(config.engine)
    if engine == "approx":
        raise ConfigurationError(
            "the approx engine has no multi-core model; "
            "pick an exact engine for CMP runs"
        )
    n_cores = cmp.cores
    names = parse_cmp_benchmark(benchmark, n_cores)
    profiles = [get_benchmark(name) for name in names]

    session: Optional[Telemetry] = None
    if telemetry is not None and telemetry.enabled:
        session = Telemetry(telemetry, f"{config.name}/{benchmark}/s{seed}")
    profiler = session.profiler if session is not None else NullProfiler()

    with profiler.phase("tracegen"):
        trace = generate_cmp_trace(
            config,
            benchmark,
            n_references,
            seed,
            warm_set_conflict=warm_set_conflict,
            profiles=profiles,
        )
    with profiler.phase("build"):
        systems = make_cmp_systems(config, n_cores, prewarm=prewarm)
    if cmp.compression is not None and cmp.compression.core_shares is None:
        # Per-workload compressibility: each core's lines draw against
        # its own benchmark's share.
        target = getattr(systems[0].l2, "cache", systems[0].l2)
        shares = getattr(target, "set_core_shares", None)
        if shares is not None:
            shares(tuple(p.compressibility for p in profiles))

    warm, measured = trace.split(warmup_fraction)
    if not len(measured):
        raise ConfigurationError("no measured references after warmup split")

    def new_cores() -> List[CoreModel]:
        return [
            CoreModel(
                params=config.core,
                core_ipc=profile.core_ipc,
                exposure=profile.exposure,
                branch_fraction=profile.branch_fraction,
                mispredict_rate=profile.mispredict_rate,
            )
            for profile in profiles
        ]

    warm_cores = new_cores()
    if len(warm):
        with profiler.phase("warmup"):
            _replay_cmp(systems, warm_cores, warm)
    for system in systems:
        system.reset_stats()

    cores = new_cores()
    # Continue on the warm timelines so port/bank busy-times stay causal.
    for core, warm_core in zip(cores, warm_cores):
        core.cycle = warm_core.cycle
    start = [(core.cycle, core.instructions) for core in cores]
    if session is not None:
        _attach_cmp_telemetry(systems, cores, session)
    with profiler.phase("measure"):
        _replay_cmp(systems, cores, measured)

    per_cycles = [core.cycle - s[0] for core, s in zip(cores, start)]
    per_instr = [core.instructions - s[1] for core, s in zip(cores, start)]
    instructions = sum(per_instr)
    cycles = max(per_cycles)
    chip = systems[0]
    l2_stats = _l2_stats(chip)
    l2_name = chip.l2.name
    model = energy_model if energy_model is not None else ProcessorEnergyModel()
    l1_energy = sum(
        system.l1d.energy.total_nj() + system.l1i.energy.total_nj()
        for system in systems
    )
    core_energy = sum(
        model.core_energy_nj(instr, cyc)
        for instr, cyc in zip(per_instr, per_cycles)
    )

    extra: Dict[str, float] = dict(l2_stats)
    extra["cmp.cores"] = float(n_cores)
    extra["mshr_full_stalls"] = float(sum(c.mshr_full_stalls for c in cores))
    extra["stall_cycles"] = float(sum(c.stall_cycles for c in cores))
    extra["branch_penalty_cycles"] = float(
        sum(c.branch_penalty_cycles for c in cores)
    )
    extra["memory_accesses"] = float(sum(c.memory_accesses for c in cores))
    for i, (core, system) in enumerate(zip(cores, systems)):
        hier = system.hierarchy.stats
        accesses = float(hier.get(f"{l2_name}_accesses"))
        hits = float(hier.get(f"{l2_name}_hits"))
        extra[f"c{i}.instructions"] = float(per_instr[i])
        extra[f"c{i}.cycles"] = float(per_cycles[i])
        extra[f"c{i}.ipc"] = (
            per_instr[i] / per_cycles[i] if per_cycles[i] else 0.0
        )
        extra[f"c{i}.l2_accesses"] = accesses
        extra[f"c{i}.l2_hits"] = hits
        extra[f"c{i}.l2_misses"] = accesses - hits
        extra[f"c{i}.l2_miss_ratio"] = (
            (accesses - hits) / accesses if accesses else 0.0
        )
        extra[f"c{i}.stall_cycles"] = float(core.stall_cycles)
    target = getattr(chip.l2, "cache", chip.l2)
    occupancy = _shared_occupancy_by_core(target, n_cores)
    if occupancy is not None:
        for i, blocks in enumerate(occupancy):
            extra[f"c{i}.l2_blocks"] = float(blocks)
    bank_ports = getattr(chip.l2, "bank_ports", None)
    if bank_ports:
        extra["bankq.banks"] = float(len(bank_ports))
        extra["bankq.busy_cycles"] = float(sum(p.total_busy for p in bank_ports))
        extra["bankq.wait_cycles"] = float(sum(p.total_wait for p in bank_ports))
        extra["bankq.grants"] = float(sum(p.grants for p in bank_ports))

    telemetry_payload: Optional[Dict[str, object]] = None
    if session is not None:
        _capture_cmp_telemetry(systems, cores, session)
        trace_path = session.flush_trace()
        telemetry_payload = session.payload(trace_path)

    return RunResult(
        benchmark=benchmark,
        config_name=config.name,
        instructions=instructions,
        cycles=cycles,
        l2_accesses=int(l2_stats.get("accesses", 0)),
        l2_hits=int(l2_stats.get("hits", 0)),
        l2_misses=int(l2_stats.get("misses", 0)),
        dgroup_fractions=_dgroup_fractions(chip),
        l1_energy_nj=l1_energy,
        lower_energy_nj=_lower_energy_nj(chip),
        core_energy_nj=core_energy,
        stats=extra,
        telemetry=telemetry_payload,
    )

"""Configuration axis for chip-multiprocessor shared-LLC scenarios.

``CmpConfig`` rides on :class:`~repro.sim.config.SystemConfig` as an
optional field, so every existing layer — parallel sweeps, supervised
execution, service memoization — picks the new axis up for free: the
config fingerprint covers the whole dataclass tree.

Three knobs:

* ``cores`` — how many cores share the LLC.  ``cores=1`` is, by
  contract, bit-identical to a config without a ``cmp`` block (the
  driver routes one-core runs through the unchanged single-core path).
* ``contention`` — per-bank FCFS queueing on the LLC data array,
  replacing the paper's infinite-bandwidth assumption (the Sniper
  ``QueueModel`` idiom: service time = block bytes / bank bandwidth).
* ``compression`` — the compressed-line NuRAPID variant where a fixed
  per-line compression ratio lets multiple compressed lines share a
  fast-d-group data frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.interleave import MAX_CORES


@dataclass(frozen=True)
class ContentionConfig:
    """Per-bank queueing on the shared LLC data array.

    Models ``n_banks`` single-ported data banks, each moving
    ``bytes_per_cycle`` of line data, in front of whatever latency the
    wrapped cache already charges.  Queueing adds *wait* cycles only:
    an unloaded bank leaves latencies exactly as the uncontended model
    computed them, so contention shows up purely as load-dependent
    slowdown.
    """

    n_banks: int = 8
    bytes_per_cycle: float = 16.0

    def __post_init__(self) -> None:
        if self.n_banks < 1:
            raise ConfigurationError(f"n_banks must be >= 1, got {self.n_banks}")
        if self.bytes_per_cycle <= 0:
            raise ConfigurationError(
                f"bytes_per_cycle must be positive, got {self.bytes_per_cycle}"
            )


@dataclass(frozen=True)
class CompressionConfig:
    """Compressed-line NuRAPID: ratio buys fast-d-group frames.

    The first ``compressed_dgroups`` d-groups store lines compressed
    ``ratio``:1, so each gains ``(ratio - 1) x`` extra data frames (and
    the set associativity limit grows to match).  Whether a line
    compresses is a deterministic per-address draw against the
    workload's compressible share; incompressible lines live only in
    the uncompressed (slower) d-groups.  Reads from a compressed group
    pay ``decompression_cycles`` extra.
    """

    ratio: int = 2
    compressible_share: float = 0.7
    decompression_cycles: int = 2
    compressed_dgroups: int = 1
    #: Optional per-core compressible shares (CMP runs fill this from
    #: each core's benchmark profile when left None).
    core_shares: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.ratio < 2:
            raise ConfigurationError(
                f"compression ratio must be >= 2, got {self.ratio}"
            )
        if not 0.0 <= self.compressible_share <= 1.0:
            raise ConfigurationError(
                f"compressible_share must be in [0, 1], got {self.compressible_share}"
            )
        if self.decompression_cycles < 0:
            raise ConfigurationError(
                f"decompression_cycles must be >= 0, got {self.decompression_cycles}"
            )
        if self.compressed_dgroups < 1:
            raise ConfigurationError(
                f"compressed_dgroups must be >= 1, got {self.compressed_dgroups}"
            )
        if self.core_shares is not None:
            if not self.core_shares or len(self.core_shares) > MAX_CORES:
                raise ConfigurationError(
                    f"core_shares must name 1..{MAX_CORES} cores"
                )
            for share in self.core_shares:
                if not 0.0 <= share <= 1.0:
                    raise ConfigurationError(
                        f"core share must be in [0, 1], got {share}"
                    )


@dataclass(frozen=True)
class CmpConfig:
    """The CMP scenario axis: cores x contention x compression."""

    cores: int = 1
    contention: Optional[ContentionConfig] = None
    compression: Optional[CompressionConfig] = None

    def __post_init__(self) -> None:
        if not 1 <= self.cores <= MAX_CORES:
            raise ConfigurationError(
                f"cores must be in [1, {MAX_CORES}], got {self.cores}"
            )

"""Chip-multiprocessor shared-LLC scenarios.

The subsystem has four pieces:

* :mod:`repro.cmp.config` — the ``CmpConfig`` axis
  (cores / contention / compression) carried by ``SystemConfig``.
* :mod:`repro.cmp.contention` — per-bank queueing on the shared LLC.
* :mod:`repro.cmp.engine` — the multi-core replay loop (interleaved
  traces, per-core hierarchies over one shared LLC, per-core
  accounting).  Imported lazily by the driver; import it explicitly —
  it pulls in the driver and must not load with this package.
* :mod:`repro.cmp.scenarios` — config factories and fairness metrics
  for experiments (imports ``repro.sim``; also import explicitly).

This ``__init__`` stays free of ``repro.sim`` imports because
``repro.sim.config`` imports :mod:`repro.cmp.config` (and hence this
package) at module load.
"""

from repro.cmp.config import CmpConfig, CompressionConfig, ContentionConfig
from repro.cmp.contention import ContendedLLC

__all__ = [
    "CmpConfig",
    "CompressionConfig",
    "ContentionConfig",
    "ContendedLLC",
]

"""Parallel, crash-tolerant sweeps with a shared on-disk trace cache.

Runs the same 4-configs x 2-benchmarks grid twice — serially, then on
worker processes — shows the results are bit-identical, and
demonstrates checkpoint resume under parallel execution: kill the grid
(Ctrl-C) and re-run, and only the unfinished cells execute.

Run:  python examples/parallel_sweep.py [jobs] [n_references]
"""

import os
import sys
import tempfile
import time

from repro.nurapid.config import PromotionPolicy
from repro.sim import Sweep, SweepAxis
from repro.sim.config import nurapid_config
from repro.sim.results import run_result_to_dict
from repro.sim.sweep import tabulate


def make_sweep(
    workdir: str, jobs: int, n_references: int, checkpoint: bool
) -> Sweep:
    # The serial reference pass runs checkpoint-free; only the parallel
    # pass persists cells, so killing/re-running resumes the parallel
    # grid without the serial pass's results leaking into it.
    return Sweep(
        axes=[
            SweepAxis("n_dgroups", (2, 4)),
            SweepAxis(
                "promotion",
                (PromotionPolicy.NEXT_FASTEST, PromotionPolicy.DEMOTION_ONLY),
            ),
        ],
        build=lambda n_dgroups, promotion: nurapid_config(
            n_dgroups=n_dgroups, promotion=promotion
        ),
        benchmarks=["galgel", "twolf"],
        n_references=n_references,
        jobs=jobs,
        # Workers load each benchmark's base trace from here instead of
        # regenerating it per cell; delete the directory to reclaim space
        # or call TraceCache(dir).prune(max_bytes).
        trace_cache_dir=os.path.join(workdir, "traces"),
        checkpoint_path=(
            os.path.join(workdir, "sweep-checkpoint.json") if checkpoint else None
        ),
    )


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else (os.cpu_count() or 2)
    n_references = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    # Refs-specific workdir: a leftover checkpoint from a run at a
    # different scale would (correctly) be refused as a different sweep.
    workdir = os.path.join(
        tempfile.gettempdir(), f"repro-parallel-sweep-{n_references}"
    )
    os.makedirs(workdir, exist_ok=True)

    checkpoint = os.path.join(workdir, "sweep-checkpoint.json")
    resuming = os.path.exists(checkpoint)

    started = time.perf_counter()
    parallel_points = make_sweep(workdir, jobs, n_references, True).run()
    parallel_s = time.perf_counter() - started

    started = time.perf_counter()
    serial_points = make_sweep(workdir, 1, n_references, False).run(resume=False)
    serial_s = time.perf_counter() - started

    identical = all(
        {b: run_result_to_dict(r) for b, r in s.runs.items()}
        == {b: run_result_to_dict(r) for b, r in p.runs.items()}
        for s, p in zip(serial_points, parallel_points)
    )

    print(tabulate(parallel_points, lambda p: p.mean_ipc()))
    print()
    if resuming:
        print(f"resumed from checkpoint {checkpoint}")
    print(
        f"serial {serial_s:.1f}s vs jobs={jobs} {parallel_s:.1f}s "
        f"({serial_s / max(parallel_s, 1e-9):.2f}x); bit-identical: {identical}"
    )
    print(f"checkpoint + trace cache under {workdir} (delete to start fresh)")


if __name__ == "__main__":
    main()

"""End-to-end telemetry walkthrough: per-d-group access and energy.

Runs one workload on the NuRAPID system with telemetry enabled, writes
the JSONL event trace, renders the merged per-d-group report (the same
rendering ``python -m repro.telemetry report`` produces), and shows
that a two-worker run of the same cells aggregates to the identical
report — the property that makes per-worker collection trustworthy.

Run:  python examples/telemetry_report.py [n_references]
"""

import os
import sys
import tempfile

from repro.sim.config import nurapid_config
from repro.sim.driver import run_benchmark, run_suite
from repro.telemetry import TelemetryConfig, read_trace, trace_summary
from repro.telemetry.report import merge_payloads, render_report


def main() -> int:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    config = nurapid_config()
    workdir = tempfile.mkdtemp(prefix="repro-telemetry-")

    # --- one instrumented run, with an event trace on disk ---
    telemetry = TelemetryConfig(trace_dir=workdir, trace_sample=4, trace_limit=5000)
    result = run_benchmark(
        config, "art", n_references=refs, seed=1, telemetry=telemetry
    )
    assert result.telemetry is not None
    trace_path = result.telemetry["trace"]["path"]
    events = read_trace(trace_path)
    print(f"trace: {os.path.basename(trace_path)}")
    for kind, count in trace_summary(events).items():
        print(f"  {kind:<12} {count}")
    print()

    # --- the per-d-group report for that run ---
    print(render_report(merge_payloads([("art", result.telemetry)])))

    # --- serial == parallel: merged reports are byte-identical ---
    benchmarks = ["art", "twolf"]
    histograms_only = TelemetryConfig()
    suites = {
        jobs: run_suite(
            config, benchmarks, n_references=refs, seed=1,
            jobs=jobs, telemetry=histograms_only,
        )
        for jobs in (1, 2)
    }
    reports = {
        jobs: render_report(
            merge_payloads(
                [(name, run.telemetry) for name, run in sorted(suite.runs.items())]
            )
        )
        for jobs, suite in suites.items()
    }
    identical = reports[1] == reports[2]
    print(f"serial report == jobs=2 report: {identical}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())

"""Compare the three L2 organizations on one benchmark.

Runs `art` (the paper's biggest winner) on the base L2/L3 hierarchy,
D-NUCA, and NuRAPID, and prints IPC, L2 behaviour, and energy — a
one-benchmark slice of Figures 9 and 10.

Run:  python examples/compare_architectures.py [benchmark] [n_refs]
"""

import sys

from repro.sim import base_config, dnuca_config, nurapid_config, run_benchmark
from repro.nuca.config import SearchPolicy
from repro.workloads import generate_trace, get_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "art"
    n_refs = int(sys.argv[2]) if len(sys.argv) > 2 else 400_000

    profile = get_benchmark(benchmark)
    print(f"benchmark: {benchmark} ({profile.suite}, {profile.load_class}-load), "
          f"{n_refs} references")
    trace = generate_trace(profile, n_refs, seed=1)

    configs = [
        base_config(),
        dnuca_config(policy=SearchPolicy.SS_PERFORMANCE),
        nurapid_config(n_dgroups=4),
    ]
    results = {
        c.name: run_benchmark(c, benchmark, trace=trace, warmup_fraction=0.4)
        for c in configs
    }
    base = results["base"]

    header = f"{'config':<28}{'IPC':>7}{'vs base':>9}{'L2 miss':>9}{'L2 uJ':>8}{'dg0':>7}"
    print()
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        rel = r.ipc / base.ipc
        dg0 = r.dgroup_fractions.get(0, float("nan"))
        dg0_text = f"{dg0:6.1%}" if r.dgroup_fractions else "    --"
        print(
            f"{name:<28}{r.ipc:>7.3f}{(rel - 1) * 100:>+8.1f}%"
            f"{r.l2_miss_fraction:>9.1%}{r.lower_energy_nj / 1000:>8.1f}{dg0_text:>7}"
        )

    print()
    print("The paper's shape: NuRAPID edges out D-NUCA on performance while")
    print("using a fraction of its L2 energy; both beat the L2/L3 base case.")


if __name__ == "__main__":
    main()

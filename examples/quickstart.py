"""Quickstart: build a NuRAPID cache and watch distance associativity work.

Runs a small synthetic loop directly against the cache (no CPU model):
a hot set of blocks gets re-referenced while background traffic streams
past, and the hot blocks end up — and stay — in the fastest d-group.

Run:  python examples/quickstart.py
"""

import random

from repro.nurapid import NuRAPIDCache, NuRAPIDConfig


def main() -> None:
    config = NuRAPIDConfig(
        capacity_bytes=1024 * 1024,  # 1 MB demo cache
        block_bytes=128,
        associativity=8,
        n_dgroups=4,
        seed=42,
        name="demo",
    )
    cache = NuRAPIDCache(config)
    geo = cache.geometry

    print("NuRAPID demo cache")
    print(f"  capacity          : {config.capacity_bytes // 1024} KB")
    print(f"  d-groups          : {config.n_dgroups} x {geo.dgroups[0].capacity_bytes // 1024} KB")
    print(f"  tag latency       : {geo.tag_cycles} cycles (sequential tag-data)")
    for spec in geo.dgroups:
        print(
            f"  d-group {spec.index} hit    : {geo.hit_latency(spec.index)} cycles, "
            f"{spec.read_energy_nj + geo.tag_energy_nj:.2f} nJ"
        )
    print(f"  forward pointer   : {geo.forward_pointer_bits} bits/tag entry")
    print(f"  reverse pointer   : {geo.reverse_pointer_bits} bits/frame")
    print()

    # Workload: 64 hot blocks re-referenced constantly, plus a stream of
    # single-use blocks four times the cache's size.
    rng = random.Random(1)
    hot = [i * 128 for i in range(64)]
    now = 0.0
    for step in range(120_000):
        if rng.random() < 0.5:
            address = rng.choice(hot)
        else:
            address = 0x100_0000 + step * 128  # streaming, never reused
        result = cache.access(address, now=now)
        now += 8
        if not result.hit:
            cache.fill(address, now=now + 194)

    cache.check_invariants()
    print("After 120k accesses (50% hot / 50% streaming):")
    for group, fraction in cache.dgroup_hits.fractions().items():
        print(f"  hits in d-group {group}: {fraction:6.1%}")
    print(f"  miss fraction    : {cache.miss_rate:6.1%}")
    hot_groups = {cache.dgroup_of(a) for a in hot}
    print(f"  hot blocks now in d-group(s): {sorted(hot_groups)}")
    print(f"  promotions: {cache.stats.get('promotions'):.0f}, "
          f"demotions: {cache.stats.get('demotions'):.0f}, "
          f"evictions: {cache.stats.get('evictions'):.0f}")
    print(f"  dynamic energy   : {cache.energy.total_nj() / 1000:.1f} uJ")


if __name__ == "__main__":
    main()

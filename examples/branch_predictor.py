"""Exercise the Table 1 branch-predictor substrate directly.

Feeds three synthetic branch behaviours through the bimodal, gshare,
and hybrid predictors and prints their mispredict rates — showing why
the hybrid (the paper's Table 1 choice) wins on mixed code.

Run:  python examples/branch_predictor.py
"""

import random

from repro.cpu.branch import BimodalPredictor, GSharePredictor, HybridPredictor


def biased_stream(rng, n, taken_probability=0.95):
    """A loop-like branch: almost always taken."""
    return [(0x400, rng.random() < taken_probability) for _ in range(n)]


def patterned_stream(n):
    """A period-4 pattern: bimodal-hostile, history-friendly."""
    pattern = [True, True, False, True]
    return [(0x800, pattern[i % 4]) for i in range(n)]


def mixed_stream(rng, n):
    """Many PCs with different behaviours, like real integer code."""
    stream = []
    pattern = [True, False]
    for i in range(n):
        which = i % 3
        if which == 0:
            stream.append((0x1000, rng.random() < 0.9))
        elif which == 1:
            stream.append((0x2000, pattern[(i // 3) % 2]))
        else:
            stream.append((0x3000 + (i % 8) * 4, rng.random() < 0.7))
    return stream


def evaluate(name, stream):
    predictors = {
        "bimodal": BimodalPredictor(8192),
        "gshare": GSharePredictor(8192, history_bits=12),
        "hybrid": HybridPredictor(8192, history_bits=12),
    }
    print(f"{name} ({len(stream)} branches)")
    for label, predictor in predictors.items():
        for pc, taken in stream:
            predictor.update(pc, taken)
        print(f"  {label:<8} mispredict rate: {predictor.mispredict_rate:6.2%}")
    print()


def main() -> None:
    rng = random.Random(7)
    evaluate("strongly biased loop branch", biased_stream(rng, 20_000))
    evaluate("period-4 pattern", patterned_stream(20_000))
    evaluate("mixed multi-PC code", mixed_stream(rng, 30_000))
    print("The hybrid tracks whichever component suits each branch —")
    print("the Table 1 configuration (2-level hybrid, 8K entries).")


if __name__ == "__main__":
    main()

"""The physical side of the paper: layout, yield, and soft errors.

Walks §3's arguments with the real substrates: mini-Cacti subarray
organizations, the SEC-DED code, interleaving plans, and the
spare-subarray yield model — no cache simulation involved.

Run:  python examples/layout_reliability.py
"""

from repro.common.rng import DeterministicRNG
from repro.floorplan.spares import SpareManager, yield_model
from repro.tech.cacti import MiniCacti
from repro.tech.ecc import InterleavingPlan, SECDED

MB = 1024 * 1024


def main() -> None:
    cacti = MiniCacti()
    dgroup = cacti.data_array(2 * MB, 128)
    bank = cacti.data_array(64 * 1024, 128)
    print("Subarray organizations (mini-Cacti):")
    print(f"  2 MB NuRAPID d-group: {dgroup.organization.count} subarrays "
          f"({dgroup.organization.subarray.rows}x{dgroup.organization.subarray.cols})")
    print(f"  64 KB D-NUCA bank   : {bank.organization.count} subarrays")
    print()

    print("SEC-DED in action (64-bit words, 72-bit codewords):")
    code = SECDED(64)
    data = 0xDEAD_BEEF_CAFE_F00D
    word = code.encode(data)
    flipped = word ^ (1 << 13)
    result = code.decode(flipped)
    print(f"  encoded {data:#x}, flipped bit 14 -> {result.status.value}, "
          f"recovered {result.data:#x}")
    double = word ^ 0b11
    print(f"  two flips -> {code.decode(double).status.value}")
    print()

    print("Block spreading vs soft errors (16 words per 128B block):")
    for subarrays in (4, 64, 128):
        plan = InterleavingPlan(16, code.codeword_bits, subarrays)
        print(f"  spread over {subarrays:>3} subarrays: "
              f"<= {plan.bits_per_word_per_subarray()} bits/word per tile, "
              f"survives tile loss: {plan.survives_subarray_loss()}")
    print()

    print("Manufacturing yield, same spare budget (4 spares), p=0.5%/tile:")
    few = yield_model(4, 64, 1, 0.005)
    many = yield_model(128, 4, 0, 0.005)
    print(f"  4 large shared-spare domains (NuRAPID): {few:.3f}")
    print(f"  128 isolated bank domains (D-NUCA)    : {many:.3f}")
    print()

    print("Defect-injection run on the NuRAPID layout:")
    manager = SpareManager()
    for group in range(4):
        manager.add_domain(f"dgroup{group}", 64, 1)
    unrepaired = manager.inject_defects(DeterministicRNG(7, "defects"), 0.01)
    for name, info in manager.summary().items():
        print(f"  {name}: {info['failed']} failed, {info['repaired']} repaired")
    print(f"  unrepaired tiles: {unrepaired} -> cache "
          f"{'healthy' if manager.healthy else 'DEAD'}")


if __name__ == "__main__":
    main()

"""Sweep NuRAPID's design space: d-group counts x promotion policies.

A compact version of the paper's §5.2–5.3 exploration on a single
benchmark: how the number of d-groups and the promotion policy trade
fast-group hits against swap traffic.  The ten runs are independent,
so the grid goes through the process-pool cell executor — pass a jobs
count to spread them over cores (results are identical for any value).

Run:  python examples/design_space.py [benchmark] [jobs]
"""

import sys

from repro.floorplan.dgroups import build_nurapid_geometry
from repro.nurapid.config import PromotionPolicy
from repro.sim import base_config, nurapid_config
from repro.sim.parallel import CellTask, run_cells
from repro.sim.results import run_result_from_dict
from repro.workloads import generate_trace, get_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "galgel"
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    profile = get_benchmark(benchmark)
    trace = generate_trace(profile, 300_000, seed=1)

    grid = [base_config()] + [
        nurapid_config(n_dgroups=n, promotion=policy)
        for n in (2, 4, 8)
        for policy in PromotionPolicy
    ]
    tasks = [
        CellTask(
            index=i,
            config=config,
            benchmark=benchmark,
            n_references=300_000,
            seed=1,
            warmup_fraction=0.4,
            trace=trace,
            isolate_errors=False,
        )
        for i, config in enumerate(grid)
    ]
    results = [
        run_result_from_dict(payload["result"])
        for payload in run_cells(tasks, jobs)
    ]
    base, rest = results[0], results[1:]

    print("Physical design (from the mini-Cacti + floorplan models):")
    for n in (2, 4, 8):
        geo = build_nurapid_geometry(n_dgroups=n)
        lats = "/".join(str(geo.hit_latency(g)) for g in range(n))
        print(f"  {n} d-groups: hit latencies {lats} cycles")
    print()

    header = (
        f"{'d-groups':>9}{'promotion':>15}{'vs base':>9}{'dg0 hits':>10}"
        f"{'swaps/1k L2':>13}"
    )
    print(header)
    print("-" * len(header))
    cells = [(n, policy) for n in (2, 4, 8) for policy in PromotionPolicy]
    for (n, policy), r in zip(cells, rest):
        rel = r.ipc / base.ipc
        swaps = 1000.0 * r.stats.get("moves", 0.0) / max(1, r.l2_accesses)
        print(
            f"{n:>9}{policy.value:>15}{(rel - 1) * 100:>+8.1f}%"
            f"{r.dgroup_fractions.get(0, 0.0):>10.1%}{swaps:>13.1f}"
        )

    print()
    print("Expected shape (paper §5.3.2): 4 and 8 d-groups clearly beat 2;")
    print("8 buys little over 4 while swapping much more; demotion-only lags.")


if __name__ == "__main__":
    main()

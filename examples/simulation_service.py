"""Simulation-as-a-service: submit a grid, then resubmit it warm.

Boots a job server in-process, submits a 2-configs x 2-benchmarks grid
from two concurrent clients (the server coalesces the duplicate work),
verifies the served results are byte-identical to a direct `run_suite`,
then resubmits the same grid and shows it returns instantly from the
content-addressed result store without simulating anything.

Run:  python examples/simulation_service.py [n_references]
"""

import dataclasses
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import (
    GridRequest,
    ServerConfig,
    ServiceClient,
    config_spec,
    serve_in_thread,
)
from repro.service.protocol import canonical_json
from repro.sim.config import nurapid_config, snuca_config
from repro.sim.driver import run_suite
from repro.sim.results import run_result_to_dict

BENCHMARKS = ["twolf", "galgel"]


def submit_and_wait(url: str, request: GridRequest) -> dict:
    client = ServiceClient(url)
    submission = client.submit(request)
    return client.wait(str(submission["job"]))


def main() -> None:
    n_references = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    request = GridRequest(
        configs=[config_spec("nurapid"), config_spec("s-nuca")],
        benchmarks=BENCHMARKS,
        n_references=n_references,
        warmup_fraction=0.4,
        engine="vectorized",
        client="alice",
    )

    with tempfile.TemporaryDirectory() as store_dir:
        with serve_in_thread(ServerConfig(store_dir=store_dir, jobs=2)) as bg:
            ServiceClient(bg.url).wait_healthy()

            # Two clients race the identical grid: the server computes
            # each cell once and delivers it to both.
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=2) as pool:
                cold, twin = pool.map(
                    lambda name: submit_and_wait(
                        bg.url, dataclasses.replace(request, client=name)
                    ),
                    ("alice", "bob"),
                )
            cold_s = time.perf_counter() - started

            started = time.perf_counter()
            warm = submit_and_wait(bg.url, request)
            warm_s = time.perf_counter() - started

            stats = ServiceClient(bg.url).stats()

        suites = ServiceClient.suites(cold)
        identical = all(
            canonical_json(run_result_to_dict(suites[config.name].runs[bench]))
            == canonical_json(
                run_result_to_dict(
                    run_suite(
                        config, BENCHMARKS, n_references=n_references,
                        seed=0, warmup_fraction=0.4,
                    ).runs[bench]
                )
            )
            for config in (
                dataclasses.replace(nurapid_config(), engine="vectorized"),
                dataclasses.replace(snuca_config(), engine="vectorized"),
            )
            for bench in BENCHMARKS
        )
        twins_match = all(
            canonical_json(a["payload"]) == canonical_json(b["payload"])
            for a, b in zip(cold["cells"], twin["cells"])
        )
        warm_hits = sum(1 for c in warm["cells"] if c["status"] == "hit")

    print(f"cold grid ({len(cold['cells'])} cells, 2 clients): {cold_s:.1f}s")
    print(f"served == direct run_suite byte-identical: {identical}")
    print(f"both clients got identical payloads: {twins_match}")
    print(
        f"warm resubmission: {warm_s * 1000:.0f}ms, "
        f"{warm_hits}/{len(warm['cells'])} cells from store"
    )
    print(f"server memo hit rate: {stats['memo_hit_rate']:.0%}")


if __name__ == "__main__":
    main()

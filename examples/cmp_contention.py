"""Shared-LLC chip-multiprocessor walkthrough: 1, 2, and 4 cores.

Each run interleaves per-core reference streams (virtual-time merge,
deterministic under the seed) over one contended NuRAPID LLC with
per-bank FCFS queues, then prints the throughput/fairness story:

* chip throughput (the sum of per-core IPCs) and how it scales,
* Jain's fairness index over the per-core IPCs,
* the mean bank-queue wait per LLC access — the latency the paper's
  infinite-bandwidth assumption hides.

A final 2-core mixed run (``twolf+mcf``) shows an unfair share split:
the cache-hungry stream drags its neighbour's IPC down through the
shared banks and shared capacity.

Run:  python examples/cmp_contention.py [benchmark] [n_references]
"""

import sys

from repro.cmp.engine import jain_fairness
from repro.cmp.scenarios import cmp_nurapid_config, per_core_ipcs
from repro.sim.driver import run_benchmark

SEED = 7
WARMUP = 0.3


def describe(result, label):
    ipcs = per_core_ipcs(result)
    throughput = sum(ipcs)
    print(f"\n-- {label} --")
    for core, ipc in enumerate(ipcs):
        print(f"  core {core}: ipc {ipc:.3f}")
    print(f"  chip throughput: {throughput:.3f} ipc")
    print(f"  fairness (Jain): {jain_fairness(ipcs):.3f}")
    grants = result.stats.get("bankq.grants", 0.0)
    if grants:
        wait = result.stats.get("bankq.wait_cycles", 0.0) / grants
        print(f"  bank wait/access: {wait:.1f} cycles")
    print(f"  L2 miss ratio: {result.l2_miss_fraction:.3f}")
    return throughput


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    n_references = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000

    print(f"benchmark: {benchmark}, {n_references} chip references")
    base = None
    for cores in (1, 2, 4):
        config = cmp_nurapid_config(cores=cores)
        result = run_benchmark(
            config,
            benchmark,
            n_references=n_references,
            seed=SEED,
            warmup_fraction=WARMUP,
        )
        throughput = describe(result, f"{cores} core(s), shared NuRAPID LLC")
        if base is None:
            base = throughput
        elif base:
            print(f"  scaling vs 1 core: {throughput / base:.2f}x")

    mixed = f"{benchmark}+mcf"
    config = cmp_nurapid_config(cores=2)
    result = run_benchmark(
        config,
        mixed,
        n_references=n_references,
        seed=SEED,
        warmup_fraction=WARMUP,
    )
    describe(result, f"2 cores, mixed {mixed}")


if __name__ == "__main__":
    main()

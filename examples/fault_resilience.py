"""Fault-injection resilience curve with a crash-tolerant sweep.

Runs the same transient-upset campaign against NuRAPID (ECC words
interleaved over 128 subarrays, §3.1's safe regime) and the base
L2/L3 hierarchy (narrow 8-subarray banking), at increasing upset
rates.  Uncorrectable dirty-line upsets kill individual cells; the
hardened sweep isolates them, retries with reseeded schedules, and
records the outcome instead of aborting the grid.

Every completed cell is checkpointed to JSON.  Kill the script
mid-grid and rerun it: completed cells are restored from the
checkpoint and only the incomplete ones are re-simulated, with the
same seeds, so the finished grid is identical either way.

Run:  python examples/fault_resilience.py [benchmark] [checkpoint.json]
"""

import os
import sys
import time

from repro.faults import FaultPlan
from repro.sim import Sweep, SweepAxis, SystemConfig, base_config, nurapid_config

RATES = (0.0, 3e-4, 1e-3, 3e-3, 1e-2)


def build(arch: str, rate: float) -> SystemConfig:
    interleave = 128 if arch == "nurapid" else 8
    plan = (
        None
        if rate == 0.0
        else FaultPlan(
            transient_per_access=rate,
            max_upset_bits=32,
            interleave_subarrays=interleave,
            data_subarrays_per_dgroup=max(64, interleave),
            seed=7,
        )
    )
    if arch == "nurapid":
        return nurapid_config(faults=plan)
    return base_config(faults=plan)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    checkpoint = sys.argv[2] if len(sys.argv) > 2 else "fault_resilience.checkpoint.json"
    sweep = Sweep(
        axes=[SweepAxis("arch", ("base", "nurapid")), SweepAxis("rate", RATES)],
        build=build,
        benchmarks=[benchmark],
        n_references=120_000,
        seed=1,
        warmup_fraction=0.4,
        max_retries=2,
        checkpoint_path=checkpoint,
    )

    resumed = os.path.exists(checkpoint)
    started = time.monotonic()
    points = sweep.run()
    elapsed = time.monotonic() - started
    verb = "resumed from" if resumed else "wrote"
    print(f"{verb} checkpoint {checkpoint} ({elapsed:.1f}s)\n")

    grid = {(p.coordinates["arch"], p.coordinates["rate"]): p for p in points}
    header = f"{'upset rate':>12}{'base rel IPC':>14}{'nurapid rel IPC':>17}  notes"
    print(header)
    print("-" * len(header))
    for rate in RATES:
        cells = []
        notes = []
        for arch in ("base", "nurapid"):
            point = grid[(arch, rate)]
            baseline = grid[(arch, 0.0)]
            if point.failed_benchmarks():
                outcome = point.outcomes[benchmark]
                cells.append("failed")
                notes.append(
                    f"{arch}: {outcome.error_type} after {outcome.attempts} attempts"
                )
            else:
                cells.append(f"{point.mean_relative(baseline):.4f}")
        print(
            f"{rate:>12g}{cells[0]:>14}{cells[1]:>17}  {'; '.join(notes)}"
        )

    print()
    print("Expected shape: NuRAPID's wide interleaving corrects every strike")
    print("(rel IPC ~1.0 at all rates); the narrow base layout accumulates")
    print("refetch misses and eventually dies of dirty-line data loss.")
    print(f"Rerun this script to restore all cells from {checkpoint};")
    print("delete the file to start fresh.")


if __name__ == "__main__":
    main()

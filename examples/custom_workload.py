"""Define a custom application profile and evaluate NuRAPID on it.

Shows the full public workload API: build a BenchmarkProfile for a
hypothetical application whose working set exactly straddles the 2 MB
fastest d-group, generate its trace, and compare 4- vs 8-d-group
NuRAPIDs — the §5.3.2 capacity/latency trade-off, on your own data.

Run:  python examples/custom_workload.py
"""

from repro.sim import base_config, nurapid_config
from repro.sim.driver import run_benchmark
from repro.workloads import generate_trace
from repro.workloads.spec2k import SPEC2K_SUITE, BenchmarkProfile

KB, MB = 1024, 1024 * 1024


def make_profile(name: str, warm_bytes: int) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite="FP",
        load_class="high",
        table3_ipc=0.8,
        table3_l2_apki=35.0,
        mem_fraction=0.36,
        hot_bytes=24 * KB,
        warm_bytes=warm_bytes,
        bulk_bytes=6 * MB,
        warm_share=0.70,
        bulk_share=0.20,
        stream_share=0.10,
        zipf_alpha=0.9,
        write_fraction=0.25,
        stream_stride=64,
        core_ipc=3.0,
        exposure=0.65,
        branch_fraction=0.08,
        mispredict_rate=0.03,
    )


def main() -> None:
    # Register two synthetic applications: one whose working set fits a
    # 2 MB d-group, one that needs more.
    fits = make_profile("fits2mb", warm_bytes=1600 * KB)
    spills = make_profile("spills2mb", warm_bytes=3 * MB)
    SPEC2K_SUITE[fits.name] = fits
    SPEC2K_SUITE[spills.name] = spills

    for profile in (fits, spills):
        trace = generate_trace(profile, 350_000, seed=1)
        base = run_benchmark(base_config(), profile.name, trace=trace,
                             warmup_fraction=0.4)
        print(f"{profile.name}: warm working set "
              f"{profile.warm_bytes // KB} KB")
        for n in (4, 8):
            r = run_benchmark(nurapid_config(n_dgroups=n), profile.name,
                              trace=trace, warmup_fraction=0.4)
            rel = (r.ipc / base.ipc - 1) * 100
            print(f"  {n}-d-group NuRAPID: {rel:+5.1f}% vs base, "
                  f"dg0 hits {r.dgroup_fractions.get(0, 0.0):6.1%}, "
                  f"miss {r.l2_miss_fraction:5.1%}")
        print()

    # Leave the global suite as we found it.
    SPEC2K_SUITE.pop(fits.name, None)
    SPEC2K_SUITE.pop(spills.name, None)

    print("A working set inside one 2 MB d-group loves the 4-d-group")
    print("design; one that spills favours finer-grained d-groups less")
    print("than you might expect, because 1 MB groups force more swaps.")


if __name__ == "__main__":
    main()
